//! The run-plan executor: prepared-dataset memoisation, cache-backed
//! backbone acquisition, and the trace counters the verification gates
//! assert on.

use crate::exp::cache::ArtifactCache;
use crate::exp::spec::Fnv;
use crate::runner::prepared_dataset;
use eos_core::{PipelineConfig, Scale, ThreePhase};
use eos_data::Dataset;
use eos_nn::{Architecture, LossKind};
use eos_tensor::Rng64;
use std::collections::HashMap;
use std::rc::Rc;

/// One backbone a table needs: which dataset analogue, which training
/// loss, and (for Table V) which architecture if not the scale default.
/// Tables expose their full list via a `plan()` function so the suite can
/// dedupe trainings across tables before running any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackbonePlan {
    /// Dataset analogue name.
    pub dataset: &'static str,
    /// Backbone training loss.
    pub loss: LossKind,
    /// Architecture override; `None` uses the scale's default.
    pub arch: Option<Architecture>,
}

impl BackbonePlan {
    /// The common case: scale-default architecture.
    pub fn new(dataset: &'static str, loss: LossKind) -> Self {
        BackbonePlan {
            dataset,
            loss,
            arch: None,
        }
    }
}

fn mix_arch(h: &mut Fnv, arch: Architecture) {
    h.str(arch.name());
    match arch {
        Architecture::ResNet {
            blocks_per_stage,
            width,
        } => {
            h.u64(blocks_per_stage as u64).u64(width as u64);
        }
        Architecture::WideResNet { k } => {
            h.u64(k as u64);
        }
        Architecture::DenseNet {
            growth,
            layers_per_block,
        } => {
            h.u64(growth as u64).u64(layers_per_block as u64);
        }
    }
}

/// Content-addressed identity of a trained backbone: dataset bits, loss,
/// every configuration field that phase one reads, and the master seed.
/// Head-only fields (`head_epochs`, `head_lr`) are deliberately excluded —
/// they do not affect the artifact being cached.
pub fn backbone_fingerprint(
    train: &Dataset,
    loss: LossKind,
    cfg: &PipelineConfig,
    seed: u64,
) -> u64 {
    let mut h = Fnv::new();
    h.str("backbone/v1")
        .u64(train.fingerprint())
        .str(loss.name());
    mix_arch(&mut h, cfg.arch);
    h.u64(cfg.backbone_epochs as u64)
        .u64(cfg.batch_size as u64)
        .f32(cfg.lr)
        .f32(cfg.momentum)
        .f32(cfg.weight_decay)
        .u64(cfg.drw_epoch as u64)
        .u64(seed);
    h.finish()
}

/// Executes a run plan: hands out prepared datasets (memoised per
/// process) and trained backbones (deduplicated through the on-disk
/// artifact cache, so a warm rerun trains nothing). All cache traffic is
/// recorded on `exp.*` trace counters regardless of whether tracing
/// output is enabled, and [`Engine::finish`] prints the totals the
/// verification gates grep for.
pub struct Engine {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    cache: Option<ArtifactCache>,
    datasets: HashMap<&'static str, Rc<(Dataset, Dataset)>>,
}

impl Engine {
    /// Engine for the parsed command line: scale and seed from the flags,
    /// cache at the default location unless `--no-cache` was given.
    pub fn new(args: &crate::Args) -> Self {
        let cache = (!args.no_cache).then(ArtifactCache::at_default);
        Engine::with_cache(args.scale, args.seed, cache)
    }

    /// Engine with an explicit cache (or `None` to always train fresh).
    pub fn with_cache(scale: Scale, seed: u64, cache: Option<ArtifactCache>) -> Self {
        Engine {
            scale,
            seed,
            cache,
            datasets: HashMap::new(),
        }
    }

    /// The scale's pipeline configuration.
    pub fn cfg(&self) -> PipelineConfig {
        self.scale.pipeline()
    }

    /// The prepared (generated + standardised) train/test pair for a
    /// dataset analogue, memoised for the life of the process.
    pub fn dataset(&mut self, name: &'static str) -> Rc<(Dataset, Dataset)> {
        let (scale, seed) = (self.scale, self.seed);
        Rc::clone(
            self.datasets
                .entry(name)
                .or_insert_with(|| Rc::new(prepared_dataset(name, scale, seed))),
        )
    }

    /// A trained backbone for `(train, loss, cfg)`: loaded from the cache
    /// when an intact entry exists, trained (and stored) otherwise. The
    /// backbone's RNG stream is seeded by its own fingerprint, so the
    /// trained weights — and everything derived from them — are identical
    /// whether this call hit or missed.
    pub fn backbone(
        &mut self,
        train: &Dataset,
        loss: LossKind,
        cfg: &PipelineConfig,
    ) -> ThreePhase {
        let fp = backbone_fingerprint(train, loss, cfg, self.seed);
        if let Some(cache) = &self.cache {
            match cache.load_backbone(fp, cfg, train) {
                Ok(Some((tp, bytes))) => {
                    eos_trace::counter("exp.backbone.hit").add(1);
                    eos_trace::counter("exp.cache.bytes_read").add(bytes);
                    return tp;
                }
                Ok(None) => {
                    eos_trace::counter("exp.backbone.miss").add(1);
                }
                Err(e) => {
                    eos_trace::counter("exp.backbone.corrupt").add(1);
                    eprintln!(
                        "[exp] discarding cache entry {}: {e}",
                        cache.backbone_path(fp).display()
                    );
                }
            }
        }
        let mut tp = {
            let _span = eos_trace::span("exp.backbone_train");
            ThreePhase::train(train, loss, cfg, &mut Rng64::new(fp))
        };
        eos_trace::counter("exp.backbone.trained").add(1);
        if let Some(cache) = &self.cache {
            match cache.store_backbone(fp, &mut tp) {
                Ok(bytes) => {
                    eos_trace::counter("exp.cache.bytes_written").add(bytes);
                }
                // A failed store costs the next run a retrain, nothing else.
                Err(e) => eprintln!("[exp] could not store cache entry {fp:016x}: {e}"),
            }
        }
        tp
    }

    /// Trains every backbone in `plans` that the cache does not already
    /// hold, deduplicating by fingerprint first — the suite collects the
    /// plans of all tables and pays each shared training exactly once.
    pub fn prewarm(&mut self, plans: &[BackbonePlan]) {
        let mut seen = Vec::new();
        for plan in plans {
            let pair = self.dataset(plan.dataset);
            let mut cfg = self.cfg();
            if let Some(arch) = plan.arch {
                cfg.arch = arch;
            }
            let fp = backbone_fingerprint(&pair.0, plan.loss, &cfg, self.seed);
            if seen.contains(&fp) {
                continue;
            }
            seen.push(fp);
            drop(self.backbone(&pair.0, plan.loss, &cfg));
        }
    }

    /// Prints the cache-traffic totals for this process to stderr in the
    /// fixed format the verification gates parse:
    /// `[exp:tag] backbones trained: N, cache hits: H, ...`.
    pub fn finish(&self, tag: &str) {
        let snap = eos_trace::snapshot();
        eprintln!(
            "[exp:{tag}] backbones trained: {}, cache hits: {}, misses: {}, corrupt: {}, \
             bytes read: {}, bytes written: {}",
            snap.counter("exp.backbone.trained"),
            snap.counter("exp.backbone.hit"),
            snap.counter("exp.backbone.miss"),
            snap.counter("exp.backbone.corrupt"),
            snap.counter("exp.cache.bytes_read"),
            snap.counter("exp.cache.bytes_written"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_backbone_inputs() {
        let (train, _) = prepared_dataset("celeba", Scale::Smoke, 1);
        let cfg = Scale::Smoke.pipeline();
        let base = backbone_fingerprint(&train, LossKind::Ce, &cfg, 42);
        assert_eq!(base, backbone_fingerprint(&train, LossKind::Ce, &cfg, 42));
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ldam, &cfg, 42));
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ce, &cfg, 43));
        let mut wide = cfg;
        wide.arch = Architecture::WideResNet { k: 1 };
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ce, &wide, 42));
        let mut longer = cfg;
        longer.backbone_epochs += 1;
        assert_ne!(
            base,
            backbone_fingerprint(&train, LossKind::Ce, &longer, 42)
        );
        // Head-only knobs do NOT move the backbone fingerprint.
        let mut head = cfg;
        head.head_epochs += 5;
        head.head_lr *= 2.0;
        assert_eq!(base, backbone_fingerprint(&train, LossKind::Ce, &head, 42));
        // Different data, different identity.
        let (other, _) = prepared_dataset("svhn", Scale::Smoke, 1);
        assert_ne!(base, backbone_fingerprint(&other, LossKind::Ce, &cfg, 42));
    }

    #[test]
    fn dataset_memo_returns_the_same_instance() {
        let mut eng = Engine::with_cache(Scale::Smoke, 1, None);
        let a = eng.dataset("celeba");
        let b = eng.dataset("celeba");
        assert!(Rc::ptr_eq(&a, &b));
    }
}
