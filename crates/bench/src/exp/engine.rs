//! The run-plan executor: prepared-dataset memoisation, cache-backed
//! backbone acquisition, and the trace counters the verification gates
//! assert on.

use crate::exp::cache::ArtifactCache;
use crate::exp::sched;
use crate::exp::spec::Fnv;
use crate::runner::prepared_dataset;
use eos_core::{PipelineConfig, Scale, ThreePhase};
use eos_data::Dataset;
use eos_nn::{Architecture, LossKind};
use eos_tensor::Rng64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One backbone a table needs: which dataset analogue, which training
/// loss, and (for Table V) which architecture if not the scale default.
/// Tables expose their full list via a `plan()` function so the suite can
/// dedupe trainings across tables before running any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackbonePlan {
    /// Dataset analogue name.
    pub dataset: &'static str,
    /// Backbone training loss.
    pub loss: LossKind,
    /// Architecture override; `None` uses the scale's default.
    pub arch: Option<Architecture>,
}

impl BackbonePlan {
    /// The common case: scale-default architecture.
    pub fn new(dataset: &'static str, loss: LossKind) -> Self {
        BackbonePlan {
            dataset,
            loss,
            arch: None,
        }
    }
}

fn mix_arch(h: &mut Fnv, arch: Architecture) {
    h.str(arch.name());
    match arch {
        Architecture::ResNet {
            blocks_per_stage,
            width,
        } => {
            h.u64(blocks_per_stage as u64).u64(width as u64);
        }
        Architecture::WideResNet { k } => {
            h.u64(k as u64);
        }
        Architecture::DenseNet {
            growth,
            layers_per_block,
        } => {
            h.u64(growth as u64).u64(layers_per_block as u64);
        }
    }
}

/// Content-addressed identity of a trained backbone: dataset bits, loss,
/// every configuration field that phase one reads, and the master seed.
/// Head-only fields (`head_epochs`, `head_lr`) are deliberately excluded —
/// they do not affect the artifact being cached.
pub fn backbone_fingerprint(
    train: &Dataset,
    loss: LossKind,
    cfg: &PipelineConfig,
    seed: u64,
) -> u64 {
    let mut h = Fnv::new();
    h.str("backbone/v1")
        .u64(train.fingerprint())
        .str(loss.name());
    mix_arch(&mut h, cfg.arch);
    h.u64(cfg.backbone_epochs as u64)
        .u64(cfg.batch_size as u64)
        .f32(cfg.lr)
        .f32(cfg.momentum)
        .f32(cfg.weight_decay)
        .u64(cfg.drw_epoch as u64)
        .u64(seed);
    h.finish()
}

/// Executes a run plan: hands out prepared datasets (memoised per
/// process) and trained backbones (deduplicated through the on-disk
/// artifact cache, so a warm rerun trains nothing). All cache traffic is
/// recorded on `exp.*` trace counters regardless of whether tracing
/// output is enabled, and [`Engine::finish`] prints the totals the
/// verification gates grep for.
///
/// The engine is `Send + Sync`: every method takes `&self`, the dataset
/// memo sits behind a mutex, and backbone acquisition coordinates through
/// the cache's per-fingerprint claim locks — so scheduler workers (and
/// whole concurrent processes sharing `$EOS_CACHE_DIR`) can drive one
/// engine without ever training the same backbone twice.
pub struct Engine {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Outer job-level parallelism (`--jobs`); 1 is fully serial.
    pub jobs: usize,
    cache: Option<ArtifactCache>,
    datasets: Mutex<HashMap<&'static str, Arc<(Dataset, Dataset)>>>,
}

impl Engine {
    /// Engine for the parsed command line: scale, seed and job count from
    /// the flags, cache at the default location unless `--no-cache` was
    /// given.
    pub fn new(args: &crate::Args) -> Self {
        let cache = (!args.no_cache).then(ArtifactCache::at_default);
        Engine::with_cache(args.scale, args.seed, cache).with_jobs(args.jobs)
    }

    /// Engine with an explicit cache (or `None` to always train fresh),
    /// serial until [`Engine::with_jobs`] raises the job count.
    pub fn with_cache(scale: Scale, seed: u64, cache: Option<ArtifactCache>) -> Self {
        Engine {
            scale,
            seed,
            jobs: 1,
            cache,
            datasets: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the outer job-level parallelism (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The scale's pipeline configuration.
    pub fn cfg(&self) -> PipelineConfig {
        self.scale.pipeline()
    }

    /// The prepared (generated + standardised) train/test pair for a
    /// dataset analogue, memoised for the life of the process. Two jobs
    /// racing on an unmemoised name may both generate it (deterministic,
    /// so merely redundant); the first insert wins and both get the same
    /// instance on every later call.
    pub fn dataset(&self, name: &'static str) -> Arc<(Dataset, Dataset)> {
        if let Some(pair) = lock(&self.datasets).get(name) {
            return Arc::clone(pair);
        }
        let made = Arc::new(prepared_dataset(name, self.scale, self.seed));
        Arc::clone(lock(&self.datasets).entry(name).or_insert(made))
    }

    /// A trained backbone for `(train, loss, cfg)`: loaded from the cache
    /// when an intact entry exists, trained (and stored) otherwise. The
    /// backbone's RNG stream is seeded by its own fingerprint, so the
    /// trained weights — and everything derived from them — are identical
    /// whether this call hit, missed, or waited for another worker.
    ///
    /// Under contention the call first tries to claim the fingerprint's
    /// lock file; a loser polls until the winner's entry appears (stored
    /// atomically, so no torn reads) or the lock goes stale and it takes
    /// over. Counter semantics for the uncontended path are unchanged:
    /// exactly one of `exp.backbone.{hit,miss,corrupt}` per call, plus
    /// `exp.backbone.trained` when a training actually ran.
    pub fn backbone(&self, train: &Dataset, loss: LossKind, cfg: &PipelineConfig) -> ThreePhase {
        let fp = backbone_fingerprint(train, loss, cfg, self.seed);
        let Some(cache) = &self.cache else {
            return self.train_backbone(fp, train, loss, cfg);
        };
        // First peek — the only load whose miss/corrupt outcome is
        // counted, so serial runs keep the one-counter-per-call contract.
        match cache.load_backbone(fp, cfg, train) {
            Ok(Some((tp, bytes))) => {
                eos_trace::counter("exp.backbone.hit").add(1);
                eos_trace::counter("exp.cache.bytes_read").add(bytes);
                return tp;
            }
            Ok(None) => {
                eos_trace::counter("exp.backbone.miss").add(1);
            }
            Err(e) => {
                eos_trace::counter("exp.backbone.corrupt").add(1);
                eprintln!(
                    "[exp] discarding cache entry {}: {e}",
                    cache.backbone_path(fp).display()
                );
            }
        }
        let mut wait = Duration::from_millis(5);
        loop {
            match cache.try_claim(fp) {
                Ok(Some(_guard)) => {
                    // Another worker may have stored the entry between
                    // our peek and this claim; honour it so no backbone
                    // ever trains twice. (A corrupt entry falls through
                    // to retraining, which overwrites it atomically.)
                    if let Ok(Some((tp, bytes))) = cache.load_backbone(fp, cfg, train) {
                        eos_trace::counter("exp.backbone.hit").add(1);
                        eos_trace::counter("exp.cache.bytes_read").add(bytes);
                        return tp;
                    }
                    let mut tp = self.train_backbone(fp, train, loss, cfg);
                    match cache.store_backbone(fp, &mut tp) {
                        Ok(bytes) => {
                            eos_trace::counter("exp.cache.bytes_written").add(bytes);
                        }
                        // A failed store costs the next run a retrain,
                        // nothing else.
                        Err(e) => eprintln!("[exp] could not store cache entry {fp:016x}: {e}"),
                    }
                    // The guard drops here — after the entry is visible,
                    // so a waiter released by the unlock finds it.
                    return tp;
                }
                Ok(None) => {
                    // A live producer holds the claim: poll for its
                    // entry with gentle backoff.
                    std::thread::sleep(wait);
                    wait = (wait * 2).min(Duration::from_millis(100));
                    if let Ok(Some((tp, bytes))) = cache.load_backbone(fp, cfg, train) {
                        eos_trace::counter("exp.backbone.hit").add(1);
                        eos_trace::counter("exp.cache.bytes_read").add(bytes);
                        return tp;
                    }
                }
                Err(e) => {
                    // Claim machinery unavailable (unwritable cache dir):
                    // train uncoordinated rather than fail the run.
                    eprintln!("[exp] cannot claim {fp:016x} ({e}); training uncoordinated");
                    let mut tp = self.train_backbone(fp, train, loss, cfg);
                    if let Ok(bytes) = cache.store_backbone(fp, &mut tp) {
                        eos_trace::counter("exp.cache.bytes_written").add(bytes);
                    }
                    return tp;
                }
            }
        }
    }

    /// Phase-one training on the fingerprint-seeded stream.
    fn train_backbone(
        &self,
        fp: u64,
        train: &Dataset,
        loss: LossKind,
        cfg: &PipelineConfig,
    ) -> ThreePhase {
        let tp = {
            let _span = eos_trace::span("exp.backbone_train");
            ThreePhase::train(train, loss, cfg, &mut Rng64::new(fp))
        };
        eos_trace::counter("exp.backbone.trained").add(1);
        tp
    }

    /// Trains every backbone in `plans` that the cache does not already
    /// hold, deduplicating by fingerprint first — the suite collects the
    /// plans of all tables and pays each shared training exactly once.
    /// With `jobs > 1` the distinct trainings run concurrently on the job
    /// scheduler; the claim protocol keeps concurrent *processes* from
    /// duplicating work too.
    pub fn prewarm(&self, plans: &[BackbonePlan]) {
        let mut seen = Vec::new();
        let mut work = Vec::new();
        for plan in plans {
            let pair = self.dataset(plan.dataset);
            let mut cfg = self.cfg();
            if let Some(arch) = plan.arch {
                cfg.arch = arch;
            }
            let fp = backbone_fingerprint(&pair.0, plan.loss, &cfg, self.seed);
            if seen.contains(&fp) {
                continue;
            }
            seen.push(fp);
            work.push((pair, plan.loss, cfg));
        }
        sched::run_jobs(
            self.jobs,
            work.into_iter()
                .map(|(pair, loss, cfg)| move || drop(self.backbone(&pair.0, loss, &cfg)))
                .collect(),
        );
    }

    /// Prints the cache-traffic totals for this process to stderr in the
    /// fixed format the verification gates parse:
    /// `[exp:tag] backbones trained: N, cache hits: H, ...` — plus a
    /// scheduler-utilisation line when the job scheduler ran.
    pub fn finish(&self, tag: &str) {
        let snap = eos_trace::snapshot();
        eprintln!(
            "[exp:{tag}] backbones trained: {}, cache hits: {}, misses: {}, corrupt: {}, \
             bytes read: {}, bytes written: {}",
            snap.counter("exp.backbone.trained"),
            snap.counter("exp.backbone.hit"),
            snap.counter("exp.backbone.miss"),
            snap.counter("exp.backbone.corrupt"),
            snap.counter("exp.cache.bytes_read"),
            snap.counter("exp.cache.bytes_written"),
        );
        let dispatched = snap.counter("exp.job.dispatched");
        if dispatched > 0 {
            let (busy, idle) = (
                snap.counter("exp.job.busy_ns"),
                snap.counter("exp.job.idle_ns"),
            );
            let util = 100.0 * busy as f64 / ((busy + idle) as f64).max(1.0);
            eprintln!(
                "[exp:{tag}] scheduler: {} jobs dispatched, {} completed, \
                 worker busy {:.2}s, idle {:.2}s, utilisation {util:.0}%",
                dispatched,
                snap.counter("exp.job.completed"),
                busy as f64 / 1e9,
                idle as f64 / 1e9,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_backbone_inputs() {
        let (train, _) = prepared_dataset("celeba", Scale::Smoke, 1);
        let cfg = Scale::Smoke.pipeline();
        let base = backbone_fingerprint(&train, LossKind::Ce, &cfg, 42);
        assert_eq!(base, backbone_fingerprint(&train, LossKind::Ce, &cfg, 42));
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ldam, &cfg, 42));
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ce, &cfg, 43));
        let mut wide = cfg;
        wide.arch = Architecture::WideResNet { k: 1 };
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ce, &wide, 42));
        let mut longer = cfg;
        longer.backbone_epochs += 1;
        assert_ne!(
            base,
            backbone_fingerprint(&train, LossKind::Ce, &longer, 42)
        );
        // Head-only knobs do NOT move the backbone fingerprint.
        let mut head = cfg;
        head.head_epochs += 5;
        head.head_lr *= 2.0;
        assert_eq!(base, backbone_fingerprint(&train, LossKind::Ce, &head, 42));
        // Different data, different identity.
        let (other, _) = prepared_dataset("svhn", Scale::Smoke, 1);
        assert_ne!(base, backbone_fingerprint(&other, LossKind::Ce, &cfg, 42));
    }

    #[test]
    fn dataset_memo_returns_the_same_instance() {
        let eng = Engine::with_cache(Scale::Smoke, 1, None);
        let a = eng.dataset("celeba");
        let b = eng.dataset("celeba");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn engine_is_send_and_sync() {
        // Compile-time gate: scheduler workers share one engine by
        // reference across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }
}
