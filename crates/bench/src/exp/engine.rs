//! The run-plan executor: prepared-dataset memoisation, cache-backed
//! backbone acquisition, journaled experiment cells, and the trace
//! counters the verification gates assert on.

use crate::exp::cache::ArtifactCache;
use crate::exp::error::EngineError;
use crate::exp::faults::{retry_io, FaultKind, FaultPlan};
use crate::exp::journal::{cell_fingerprint, Journal, Rows};
use crate::exp::sched;
use crate::exp::spec::Fnv;
use crate::runner::prepared_dataset;
use eos_core::{PipelineConfig, Scale, ThreePhase};
use eos_data::Dataset;
use eos_nn::{Architecture, Checkpointer, LossKind, TrainError};
use eos_tensor::Rng64;
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default bound on how long a claim loser waits for the producer's
/// entry before failing the cell with
/// [`EngineError::LockTimeout`]. Generous — a live producer is usually a
/// training run — but finite, so a wedged peer can no longer hang the
/// suite forever.
const DEFAULT_LOCK_TIMEOUT: Duration = Duration::from_secs(3600);

/// A boxed experiment-cell task as handed to the scheduler: journaled,
/// fault-injected, returning its table rows or a typed error.
pub type CellTask<'s> = Box<dyn FnOnce() -> Result<Rows, EngineError> + Send + 's>;

/// One backbone a table needs: which dataset analogue, which training
/// loss, and (for Table V) which architecture if not the scale default.
/// Tables expose their full list via a `plan()` function so the suite can
/// dedupe trainings across tables before running any of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackbonePlan {
    /// Dataset analogue name.
    pub dataset: &'static str,
    /// Backbone training loss.
    pub loss: LossKind,
    /// Architecture override; `None` uses the scale's default.
    pub arch: Option<Architecture>,
}

impl BackbonePlan {
    /// The common case: scale-default architecture.
    pub fn new(dataset: &'static str, loss: LossKind) -> Self {
        BackbonePlan {
            dataset,
            loss,
            arch: None,
        }
    }
}

fn mix_arch(h: &mut Fnv, arch: Architecture) {
    h.str(arch.name());
    match arch {
        Architecture::ResNet {
            blocks_per_stage,
            width,
        } => {
            h.u64(blocks_per_stage as u64).u64(width as u64);
        }
        Architecture::WideResNet { k } => {
            h.u64(k as u64);
        }
        Architecture::DenseNet {
            growth,
            layers_per_block,
        } => {
            h.u64(growth as u64).u64(layers_per_block as u64);
        }
    }
}

/// Content-addressed identity of a trained backbone: dataset bits, loss,
/// every configuration field that phase one reads, and the master seed.
/// Head-only fields (`head_epochs`, `head_lr`) are deliberately excluded —
/// they do not affect the artifact being cached.
pub fn backbone_fingerprint(
    train: &Dataset,
    loss: LossKind,
    cfg: &PipelineConfig,
    seed: u64,
) -> u64 {
    let mut h = Fnv::new();
    h.str("backbone/v1")
        .u64(train.fingerprint())
        .str(loss.name());
    mix_arch(&mut h, cfg.arch);
    h.u64(cfg.backbone_epochs as u64)
        .u64(cfg.batch_size as u64)
        .f32(cfg.lr)
        .f32(cfg.momentum)
        .f32(cfg.weight_decay)
        .u64(cfg.drw_epoch as u64)
        .u64(seed);
    h.finish()
}

/// Executes a run plan: hands out prepared datasets (memoised per
/// process) and trained backbones (deduplicated through the on-disk
/// artifact cache, so a warm rerun trains nothing). All cache traffic is
/// recorded on `exp.*` trace counters regardless of whether tracing
/// output is enabled, and [`Engine::finish`] prints the totals the
/// verification gates grep for.
///
/// The engine is `Send + Sync`: every method takes `&self`, the dataset
/// memo sits behind a mutex, and backbone acquisition coordinates through
/// the cache's per-fingerprint claim locks — so scheduler workers (and
/// whole concurrent processes sharing `$EOS_CACHE_DIR`) can drive one
/// engine without ever training the same backbone twice.
///
/// Failure surfaces as typed [`EngineError`]s instead of panics:
/// transient IO is retried with backoff, corrupt cache entries fall back
/// to retraining, claim waits are bounded by
/// [`Engine::with_lock_timeout`], and every completed experiment cell is
/// journaled (see [`Engine::cell`]) so an interrupted run resumes
/// without recomputation.
pub struct Engine {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Outer job-level parallelism (`--jobs`); 1 is fully serial.
    pub jobs: usize,
    cache: Option<ArtifactCache>,
    journal: Option<Journal>,
    faults: Arc<FaultPlan>,
    lock_timeout: Duration,
    ckpt_every: usize,
    datasets: Mutex<HashMap<&'static str, Arc<(Dataset, Dataset)>>>,
}

impl Engine {
    /// Engine for the parsed command line: scale, seed and job count from
    /// the flags, cache at the default location unless `--no-cache` was
    /// given, fault plan from `$EOS_FAULTS` (exits with a usage message
    /// on a malformed spec).
    pub fn new(args: &crate::Args) -> Self {
        let faults = match FaultPlan::from_env() {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("error: bad EOS_FAULTS spec: {e}");
                std::process::exit(2);
            }
        };
        let ckpt_every = match std::env::var("EOS_CKPT_EVERY") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("error: bad EOS_CKPT_EVERY '{v}' (expected a non-negative integer)");
                    std::process::exit(2);
                }
            },
            Err(_) => 1,
        };
        let cache = (!args.no_cache).then(ArtifactCache::at_default);
        Engine::with_cache(args.scale, args.seed, cache)
            .with_jobs(args.jobs)
            .with_faults(faults)
            .with_ckpt_every(ckpt_every)
    }

    /// Engine with an explicit cache (or `None` to always train fresh),
    /// serial until [`Engine::with_jobs`] raises the job count. The cell
    /// journal lives beside the cache (`<cache>/journal/`); a cache-less
    /// engine journals nothing and recomputes every cell.
    pub fn with_cache(scale: Scale, seed: u64, cache: Option<ArtifactCache>) -> Self {
        let journal = cache.as_ref().map(|c| Journal::at(c.dir().join("journal")));
        Engine {
            scale,
            seed,
            jobs: 1,
            cache,
            journal,
            faults: Arc::new(FaultPlan::empty()),
            lock_timeout: DEFAULT_LOCK_TIMEOUT,
            ckpt_every: 1,
            datasets: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the outer job-level parallelism (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Arms a fault-injection plan on the engine and its cache.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        let faults = Arc::new(faults);
        if let Some(cache) = &mut self.cache {
            cache.set_faults(Arc::clone(&faults));
        }
        self.faults = faults;
        self
    }

    /// Bounds how long [`Engine::backbone`] waits on another worker's
    /// claim before failing with [`EngineError::LockTimeout`].
    pub fn with_lock_timeout(mut self, timeout: Duration) -> Self {
        self.lock_timeout = timeout.max(Duration::from_millis(1));
        self
    }

    /// Sets the training-checkpoint cadence: a backbone training saves an
    /// EOST checkpoint every `n` completed epochs (plus always at the
    /// final epoch). `0` disables mid-training checkpoints entirely; the
    /// default is 1. Overridable at the CLI via `$EOS_CKPT_EVERY`.
    pub fn with_ckpt_every(mut self, every: usize) -> Self {
        self.ckpt_every = every;
        self
    }

    /// The scale's pipeline configuration.
    pub fn cfg(&self) -> PipelineConfig {
        self.scale.pipeline()
    }

    /// The prepared (generated + standardised) train/test pair for a
    /// dataset analogue, memoised for the life of the process. Two jobs
    /// racing on an unmemoised name may both generate it (deterministic,
    /// so merely redundant); the first insert wins and both get the same
    /// instance on every later call.
    pub fn dataset(&self, name: &'static str) -> Arc<(Dataset, Dataset)> {
        if let Some(pair) = lock(&self.datasets).get(name) {
            return Arc::clone(pair);
        }
        let made = Arc::new(prepared_dataset(name, self.scale, self.seed));
        Arc::clone(lock(&self.datasets).entry(name).or_insert(made))
    }

    /// A trained backbone for `(train, loss, cfg)`: loaded from the cache
    /// when an intact entry exists, trained (and stored) otherwise. The
    /// backbone's RNG stream is seeded by its own fingerprint, so the
    /// trained weights — and everything derived from them — are identical
    /// whether this call hit, missed, or waited for another worker.
    ///
    /// Under contention the call first tries to claim the fingerprint's
    /// lock file; a loser polls until the winner's entry appears (stored
    /// atomically, so no torn reads), the lock goes stale and it takes
    /// over, or the bounded wait expires ([`EngineError::LockTimeout`]).
    /// Transient IO errors are retried with backoff; an error that
    /// outlives the retries fails the call with [`EngineError::Io`].
    /// Counter semantics for the uncontended path are unchanged: exactly
    /// one of `exp.backbone.{hit,miss,corrupt}` per call, plus
    /// `exp.backbone.trained` when a training actually ran.
    pub fn backbone(
        &self,
        train: &Dataset,
        loss: LossKind,
        cfg: &PipelineConfig,
    ) -> Result<ThreePhase, EngineError> {
        let fp = backbone_fingerprint(train, loss, cfg, self.seed);
        let Some(cache) = &self.cache else {
            return self.train_backbone(fp, train, loss, cfg);
        };
        let read_what = format!("cache read {fp:016x}");
        // First peek — the only load whose miss/corrupt outcome is
        // counted, so serial runs keep the one-counter-per-call contract.
        match retry_io(&read_what, || cache.load_backbone(fp, cfg, train)) {
            Ok(Some((tp, bytes))) => {
                eos_trace::counter("exp.backbone.hit").add(1);
                eos_trace::counter("exp.cache.bytes_read").add(bytes);
                return Ok(tp);
            }
            Ok(None) => {
                eos_trace::counter("exp.backbone.miss").add(1);
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                eos_trace::counter("exp.backbone.corrupt").add(1);
                eprintln!(
                    "[exp] discarding cache entry {}: {e}",
                    cache.backbone_path(fp).display()
                );
            }
            Err(e) => return Err(EngineError::io(read_what, e)),
        }
        let deadline = Instant::now() + self.lock_timeout;
        let mut wait = Duration::from_millis(5);
        loop {
            match retry_io(&format!("cache claim {fp:016x}"), || cache.try_claim(fp)) {
                Ok(Some(_guard)) => {
                    // Another worker may have stored the entry between
                    // our peek and this claim; honour it so no backbone
                    // ever trains twice. (A corrupt or unreadable entry
                    // falls through to retraining, which overwrites it
                    // atomically.)
                    if let Ok(Some((tp, bytes))) = cache.load_backbone(fp, cfg, train) {
                        eos_trace::counter("exp.backbone.hit").add(1);
                        eos_trace::counter("exp.cache.bytes_read").add(bytes);
                        return Ok(tp);
                    }
                    let mut tp = self.train_backbone(fp, train, loss, cfg)?;
                    match retry_io(&format!("cache write {fp:016x}"), || {
                        cache.store_backbone(fp, &mut tp)
                    }) {
                        Ok(bytes) => {
                            eos_trace::counter("exp.cache.bytes_written").add(bytes);
                            self.clear_checkpoints(fp);
                        }
                        // A failed store costs the next run a retrain —
                        // and the checkpoints stay, so even that retrain
                        // replays zero epochs.
                        Err(e) => eprintln!("[exp] could not store cache entry {fp:016x}: {e}"),
                    }
                    // The guard drops here — after the entry is visible,
                    // so a waiter released by the unlock finds it.
                    return Ok(tp);
                }
                Ok(None) => {
                    // A live producer holds the claim: poll for its
                    // entry with gentle backoff, up to the timeout.
                    if Instant::now() >= deadline {
                        eos_trace::counter("exp.lock.wait_timeout").add(1);
                        return Err(EngineError::LockTimeout {
                            fp,
                            waited: self.lock_timeout,
                        });
                    }
                    std::thread::sleep(wait);
                    wait = (wait * 2).min(Duration::from_millis(100));
                    if let Ok(Some((tp, bytes))) = cache.load_backbone(fp, cfg, train) {
                        eos_trace::counter("exp.backbone.hit").add(1);
                        eos_trace::counter("exp.cache.bytes_read").add(bytes);
                        return Ok(tp);
                    }
                }
                Err(e) => {
                    // Claim machinery unavailable (unwritable cache dir):
                    // train uncoordinated rather than fail the run.
                    eprintln!("[exp] cannot claim {fp:016x} ({e}); training uncoordinated");
                    let mut tp = self.train_backbone(fp, train, loss, cfg)?;
                    if let Ok(bytes) = cache.store_backbone(fp, &mut tp) {
                        eos_trace::counter("exp.cache.bytes_written").add(bytes);
                        self.clear_checkpoints(fp);
                    }
                    return Ok(tp);
                }
            }
        }
    }

    /// The checkpointer a backbone training runs under, or `None` when
    /// the engine is cache-less or checkpoints are disabled. Checkpoints
    /// live in the cache's `ckpt/` subdirectory, stemmed by the backbone
    /// fingerprint, so a killed training resumes from its last completed
    /// epoch when the same fingerprint trains again. The after-epoch hook
    /// arms the `train.epoch` fault point: an abort/panic fires *after*
    /// that epoch's checkpoint is on disk — exactly the mid-training kill
    /// the crash-resume gate stages.
    fn checkpointer(&self, fp: u64) -> Option<Checkpointer> {
        let cache = self.cache.as_ref()?;
        if self.ckpt_every == 0 {
            return None;
        }
        let faults = Arc::clone(&self.faults);
        let label = format!("backbone {fp:016x}");
        Some(
            Checkpointer::new(cache.ckpt_dir(), format!("bb_{fp:016x}"))
                .every(self.ckpt_every)
                .after_epoch(move |epochs_done| {
                    match faults.fire("train.epoch", &label) {
                        None => {}
                        Some(FaultKind::Panic) => {
                            panic!("injected panic fault at train.epoch {epochs_done} ({label})")
                        }
                        Some(FaultKind::Abort) => {
                            eprintln!(
                                "[faults] aborting process at train.epoch {epochs_done} ({label})"
                            );
                            std::process::abort();
                        }
                        // Epoch boundaries have no IO or loss of their own
                        // to corrupt; only the kill kinds apply here.
                        Some(kind) => eprintln!(
                            "[faults] ignoring {kind:?} at train.epoch {epochs_done} ({label}): \
                             only panic/abort apply at epoch boundaries"
                        ),
                    }
                }),
        )
    }

    /// Removes the finished training's checkpoints once its final entry
    /// is durable in the cache — they are superseded by `bb_<fp>.eosc`.
    fn clear_checkpoints(&self, fp: u64) {
        if let Some(ckpt) = self.checkpointer(fp) {
            ckpt.clear();
        }
    }

    /// Phase-one training on the fingerprint-seeded stream, resuming from
    /// the newest intact EOST checkpoint when one exists (a previous run
    /// of this fingerprint was killed mid-training). Divergence (a
    /// non-finite loss, real or injected at the `train` fault point)
    /// surfaces as [`EngineError::TrainDivergence`].
    fn train_backbone(
        &self,
        fp: u64,
        train: &Dataset,
        loss: LossKind,
        cfg: &PipelineConfig,
    ) -> Result<ThreePhase, EngineError> {
        let what = format!("backbone {fp:016x}");
        match self.faults.fire("train", &what) {
            None => {}
            Some(FaultKind::Diverge) | Some(FaultKind::Corrupt) => {
                return Err(EngineError::TrainDivergence {
                    what: format!("{what} (injected)"),
                    source: TrainError {
                        epoch: 0,
                        batch: 0,
                        loss_name: "injected",
                        value: f32::NAN,
                    },
                });
            }
            Some(FaultKind::Io) => {
                return Err(EngineError::io(
                    what,
                    io::Error::other("injected io fault at train"),
                ));
            }
            Some(FaultKind::Panic) => panic!("injected panic fault at train ({what})"),
            Some(FaultKind::Abort) => {
                eprintln!("[faults] aborting process at train ({what})");
                std::process::abort();
            }
        }
        let tp = {
            let _span = eos_trace::span("exp.backbone_train");
            ThreePhase::try_train_ckpt(train, loss, cfg, &mut Rng64::new(fp), self.checkpointer(fp))
                .map_err(|f| EngineError::TrainDivergence {
                    what: format!("{what} (after {} completed epochs)", f.completed.len()),
                    source: f.error,
                })?
        };
        eos_trace::counter("exp.backbone.trained").add(1);
        Ok(tp)
    }

    /// Wraps one experiment cell for the scheduler: journal replay,
    /// fault injection at the cell boundary, and typed-error isolation.
    ///
    /// `label` names the cell within its table (`"celeba/Ce"`); the full
    /// label `table/label` keys the fault plan and the failure report.
    /// If the journal holds the cell's rows (fingerprinted over table,
    /// label, scale and seed) they are replayed without computing;
    /// otherwise `compute` runs and its rows are journaled before being
    /// returned — so a rerun after a crash skips every finished cell and
    /// still renders byte-identical tables.
    pub fn cell<'s, F>(&'s self, table: &'static str, label: String, compute: F) -> CellTask<'s>
    where
        F: FnOnce() -> Result<Rows, EngineError> + Send + 's,
    {
        Box::new(move || self.run_cell(table, &label, compute))
    }

    fn run_cell(
        &self,
        table: &'static str,
        label: &str,
        compute: impl FnOnce() -> Result<Rows, EngineError>,
    ) -> Result<Rows, EngineError> {
        let full = format!("{table}/{label}");
        match self.faults.fire("cell", &full) {
            None => {}
            Some(FaultKind::Panic) => panic!("injected panic fault at cell '{full}'"),
            Some(FaultKind::Abort) => {
                eprintln!("[faults] aborting process at cell '{full}'");
                std::process::abort();
            }
            Some(FaultKind::Io) | Some(FaultKind::Corrupt) | Some(FaultKind::Diverge) => {
                return Err(EngineError::io(
                    format!("cell '{full}'"),
                    io::Error::other("injected fault at cell boundary"),
                ));
            }
        }
        let fp = cell_fingerprint(table, label, self.scale.name(), self.seed);
        if let Some(journal) = &self.journal {
            match journal.load(fp) {
                Ok(Some(rows)) => {
                    eos_trace::counter("exp.cell.replayed").add(1);
                    return Ok(rows);
                }
                Ok(None) => {}
                Err(e) => {
                    // Corrupt or unreadable journal entry: recompute
                    // (identical bits — cells are pure in their spec).
                    eos_trace::counter("exp.cell.journal_corrupt").add(1);
                    eprintln!(
                        "[exp] discarding journal entry {}: {e}",
                        journal.cell_path(fp).display()
                    );
                }
            }
        }
        let rows = compute()?;
        if let Some(journal) = &self.journal {
            match retry_io(&format!("journal write '{full}'"), || {
                journal.store(fp, &rows)
            }) {
                Ok(bytes) => eos_trace::counter("exp.journal.bytes_written").add(bytes),
                // A failed journal write costs a rerun this cell's
                // recompute, nothing else.
                Err(e) => eprintln!("[exp] could not journal cell '{full}': {e}"),
            }
        }
        eos_trace::counter("exp.cell.computed").add(1);
        Ok(rows)
    }

    /// Trains every backbone in `plans` that the cache does not already
    /// hold, deduplicating by fingerprint first — the suite collects the
    /// plans of all tables and pays each shared training exactly once.
    /// With `jobs > 1` the distinct trainings run concurrently on the job
    /// scheduler; the claim protocol keeps concurrent *processes* from
    /// duplicating work too.
    ///
    /// Prewarm failures are logged and *not* fatal: the cells that need
    /// the failed backbone will re-attempt it and report the typed error
    /// in context.
    pub fn prewarm(&self, plans: &[BackbonePlan]) {
        let mut seen = Vec::new();
        let mut work = Vec::new();
        for plan in plans {
            let pair = self.dataset(plan.dataset);
            let mut cfg = self.cfg();
            if let Some(arch) = plan.arch {
                cfg.arch = arch;
            }
            let fp = backbone_fingerprint(&pair.0, plan.loss, &cfg, self.seed);
            if seen.contains(&fp) {
                continue;
            }
            seen.push(fp);
            work.push((pair, plan.loss, cfg));
        }
        let outcomes = sched::run_jobs(
            self.jobs,
            work.into_iter()
                .map(|(pair, loss, cfg)| move || self.backbone(&pair.0, loss, &cfg).map(drop))
                .collect(),
        );
        for outcome in outcomes {
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(e)) => eprintln!("[exp] prewarm: [{}] {e} (cell will retry)", e.kind()),
                Err(p) => eprintln!(
                    "[exp] prewarm: task panicked: {} (cell will retry)",
                    p.message
                ),
            }
        }
    }

    /// Prints the cache-traffic totals for this process to stderr in the
    /// fixed format the verification gates parse:
    /// `[exp:tag] backbones trained: N, cache hits: H, ...`, then the
    /// cell scoreboard `[exp:tag] cells computed: C, replayed: R, ...`
    /// (the resume gate greps the replayed count) — plus a
    /// scheduler-utilisation line when the job scheduler ran.
    pub fn finish(&self, tag: &str) {
        let snap = eos_trace::snapshot();
        eprintln!(
            "[exp:{tag}] backbones trained: {}, cache hits: {}, misses: {}, corrupt: {}, \
             bytes read: {}, bytes written: {}",
            snap.counter("exp.backbone.trained"),
            snap.counter("exp.backbone.hit"),
            snap.counter("exp.backbone.miss"),
            snap.counter("exp.backbone.corrupt"),
            snap.counter("exp.cache.bytes_read"),
            snap.counter("exp.cache.bytes_written"),
        );
        eprintln!(
            "[exp:{tag}] cells computed: {}, replayed: {}, failed: {}, faults injected: {}, \
             io retries: {}",
            snap.counter("exp.cell.computed"),
            snap.counter("exp.cell.replayed"),
            snap.counter("exp.cell.failed"),
            snap.counter("exp.fault.injected"),
            snap.counter("exp.fault.retry"),
        );
        eprintln!(
            "[exp:{tag}] epochs trained: {}, checkpoints saved: {}, loaded: {}, corrupt: {}, \
             ckpt bytes: {}",
            snap.counter("train.epochs"),
            snap.counter("train.ckpt.saved"),
            snap.counter("train.ckpt.loaded"),
            snap.counter("train.ckpt.corrupt"),
            snap.counter("train.ckpt.bytes"),
        );
        let dispatched = snap.counter("exp.job.dispatched");
        if dispatched > 0 {
            let (busy, idle) = (
                snap.counter("exp.job.busy_ns"),
                snap.counter("exp.job.idle_ns"),
            );
            let util = 100.0 * busy as f64 / ((busy + idle) as f64).max(1.0);
            eprintln!(
                "[exp:{tag}] scheduler: {} jobs dispatched, {} completed, \
                 worker busy {:.2}s, idle {:.2}s, utilisation {util:.0}%",
                dispatched,
                snap.counter("exp.job.completed"),
                busy as f64 / 1e9,
                idle as f64 / 1e9,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_backbone_inputs() {
        let (train, _) = prepared_dataset("celeba", Scale::Smoke, 1);
        let cfg = Scale::Smoke.pipeline();
        let base = backbone_fingerprint(&train, LossKind::Ce, &cfg, 42);
        assert_eq!(base, backbone_fingerprint(&train, LossKind::Ce, &cfg, 42));
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ldam, &cfg, 42));
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ce, &cfg, 43));
        let mut wide = cfg;
        wide.arch = Architecture::WideResNet { k: 1 };
        assert_ne!(base, backbone_fingerprint(&train, LossKind::Ce, &wide, 42));
        let mut longer = cfg;
        longer.backbone_epochs += 1;
        assert_ne!(
            base,
            backbone_fingerprint(&train, LossKind::Ce, &longer, 42)
        );
        // Head-only knobs do NOT move the backbone fingerprint.
        let mut head = cfg;
        head.head_epochs += 5;
        head.head_lr *= 2.0;
        assert_eq!(base, backbone_fingerprint(&train, LossKind::Ce, &head, 42));
        // Different data, different identity.
        let (other, _) = prepared_dataset("svhn", Scale::Smoke, 1);
        assert_ne!(base, backbone_fingerprint(&other, LossKind::Ce, &cfg, 42));
    }

    #[test]
    fn dataset_memo_returns_the_same_instance() {
        let eng = Engine::with_cache(Scale::Smoke, 1, None);
        let a = eng.dataset("celeba");
        let b = eng.dataset("celeba");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn engine_is_send_and_sync() {
        // Compile-time gate: scheduler workers share one engine by
        // reference across threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
    }

    #[test]
    fn cacheless_engine_recomputes_cells() {
        let eng = Engine::with_cache(Scale::Smoke, 1, None);
        let mut calls = 0;
        for _ in 0..2 {
            let task = eng.cell("test", "a".into(), || {
                calls += 1;
                Ok(vec![vec!["x".into()]])
            });
            assert_eq!(task().unwrap(), vec![vec!["x".to_string()]]);
        }
        assert_eq!(calls, 2, "no journal without a cache");
    }
}
