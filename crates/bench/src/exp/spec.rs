//! Declarative experiment cells and their stable fingerprints.

use eos_core::{Direction, Eos, GapAwareEos, Scale};
use eos_gan::{BaganLite, CGan, DeepSmote, GamoLite};
use eos_nn::LossKind;
use eos_resample::{BalancedSvm, BorderlineSmote, Oversampler, Remix, Smote};
use eos_tensor::Rng64;

/// Streaming FNV-1a hasher over typed fields. Fingerprints derived from
/// it key the on-disk artifact cache and seed per-cell RNG streams, so
/// the mixing must stay stable across releases — change it and every
/// cached artifact silently invalidates (safe, but wasteful) while every
/// derived RNG stream shifts (changes experiment output).
pub struct Fnv(u64);

impl Fnv {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    /// Mixes raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
        self
    }

    /// Mixes a string with a terminator, so `"ab" + "c"` and `"a" + "bc"`
    /// hash differently.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes()).bytes(&[0xff])
    }

    /// Mixes a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Mixes an `f32` by bit pattern (exact, no rounding ambiguity).
    pub fn f32(&mut self, v: f32) -> &mut Self {
        self.bytes(&v.to_bits().to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

/// An RNG stream derived from the master seed and a path of name parts.
/// Replaces the binaries' old ad-hoc `seed ^ name_hash(a) ^ name_hash(b)`
/// mixing (where two different part-sets could collide by XOR symmetry).
pub fn mix_rng(seed: u64, parts: &[&str]) -> Rng64 {
    let mut h = Fnv::new();
    h.u64(seed);
    for p in parts {
        h.str(p);
    }
    Rng64::new(h.finish())
}

/// Which oversampler an experiment cell applies to the train embeddings
/// (or pixels) — the declarative form of the samplers the binaries used
/// to construct inline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SamplerSpec {
    /// No augmentation.
    Baseline,
    /// SMOTE with `k` neighbours.
    Smote {
        /// Interpolation neighbourhood size.
        k: usize,
    },
    /// Borderline-SMOTE with `k` interpolation / `m` danger neighbours.
    BorderlineSmote {
        /// Interpolation neighbourhood size.
        k: usize,
        /// Danger-zone detection neighbourhood size.
        m: usize,
    },
    /// Balanced-SVM oversampling with `k` neighbours.
    BalancedSvm {
        /// Interpolation neighbourhood size.
        k: usize,
    },
    /// Remix (pixel-space mixing; pre-processing arm only).
    Remix,
    /// Expansive Over-Sampling.
    Eos {
        /// Enemy neighbourhood size `K`.
        k: usize,
        /// Interpolation direction.
        direction: Direction,
        /// Interpolation coefficient cap (`r ~ U[0, r_scale]`).
        r_scale: f32,
    },
    /// Gap-aware EOS (the §VII future-work extension).
    GapAwareEos {
        /// Enemy neighbourhood size `K`.
        k: usize,
    },
    /// GAMO-lite GAN baseline.
    GamoLite,
    /// BAGAN-lite GAN baseline.
    BaganLite,
    /// DeepSMOTE baseline.
    DeepSmote,
    /// Conditional GAN baseline.
    CGan,
}

impl SamplerSpec {
    /// EOS with the calibrated defaults of [`Eos::new`].
    pub fn eos(k: usize) -> Self {
        let d = Eos::new(k);
        SamplerSpec::Eos {
            k: d.k,
            direction: d.direction,
            r_scale: d.r_scale,
        }
    }

    /// The three classical oversamplers of Tables I/II, in the paper's
    /// column order.
    pub fn classic_lineup() -> [SamplerSpec; 3] {
        [
            SamplerSpec::Smote { k: 5 },
            SamplerSpec::BorderlineSmote { k: 5, m: 5 },
            SamplerSpec::BalancedSvm { k: 5 },
        ]
    }

    /// Short name used in experiment output (matches each sampler's own
    /// [`Oversampler::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            SamplerSpec::Baseline => "Baseline",
            SamplerSpec::Smote { .. } => "SMOTE",
            SamplerSpec::BorderlineSmote { .. } => "B-SMOTE",
            SamplerSpec::BalancedSvm { .. } => "Bal-SVM",
            SamplerSpec::Remix => "Remix",
            SamplerSpec::Eos { .. } => "EOS",
            SamplerSpec::GapAwareEos { .. } => "GapEOS",
            SamplerSpec::GamoLite => "GAMO",
            SamplerSpec::BaganLite => "BAGAN",
            SamplerSpec::DeepSmote => "DeepSMOTE",
            SamplerSpec::CGan => "CGAN",
        }
    }

    /// Instantiates the oversampler; `None` for [`SamplerSpec::Baseline`].
    pub fn build(&self) -> Option<Box<dyn Oversampler>> {
        Some(match *self {
            SamplerSpec::Baseline => return None,
            SamplerSpec::Smote { k } => Box::new(Smote::new(k)),
            SamplerSpec::BorderlineSmote { k, m } => Box::new(BorderlineSmote::new(k, m)),
            SamplerSpec::BalancedSvm { k } => Box::new(BalancedSvm::new(k)),
            SamplerSpec::Remix => Box::new(Remix::new()),
            SamplerSpec::Eos {
                k,
                direction,
                r_scale,
            } => {
                let mut eos = Eos::with_direction(k, direction);
                eos.r_scale = r_scale;
                Box::new(eos)
            }
            SamplerSpec::GapAwareEos { k } => Box::new(GapAwareEos::new(k)),
            SamplerSpec::GamoLite => Box::new(GamoLite::new()),
            SamplerSpec::BaganLite => Box::new(BaganLite::new()),
            SamplerSpec::DeepSmote => Box::new(DeepSmote::new()),
            SamplerSpec::CGan => Box::new(CGan::new()),
        })
    }

    fn mix(&self, h: &mut Fnv) {
        h.str(self.name());
        match *self {
            SamplerSpec::Smote { k }
            | SamplerSpec::BalancedSvm { k }
            | SamplerSpec::GapAwareEos { k } => {
                h.u64(k as u64);
            }
            SamplerSpec::BorderlineSmote { k, m } => {
                h.u64(k as u64).u64(m as u64);
            }
            SamplerSpec::Eos {
                k,
                direction,
                r_scale,
            } => {
                h.u64(k as u64)
                    .str(match direction {
                        Direction::TowardEnemy => "toward",
                        Direction::AwayFromEnemy => "away",
                    })
                    .f32(r_scale);
            }
            SamplerSpec::Baseline
            | SamplerSpec::Remix
            | SamplerSpec::GamoLite
            | SamplerSpec::BaganLite
            | SamplerSpec::DeepSmote
            | SamplerSpec::CGan => {}
        }
    }
}

/// One experiment cell: which table it belongs to, what data, which
/// backbone loss, which oversampler, at what scale and master seed. The
/// key type of the engine — everything a cell computes is a pure
/// function of this struct.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentSpec {
    /// Table/figure tag (`"table2"`, `"fig7"`, …).
    pub table: &'static str,
    /// Dataset analogue name (or a custom tag for derived sets).
    pub dataset: &'static str,
    /// Backbone training loss.
    pub loss: LossKind,
    /// The oversampler under evaluation.
    pub sampler: SamplerSpec,
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentSpec {
    /// Stable FNV fingerprint of the cell.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str("cell/v1")
            .str(self.table)
            .str(self.dataset)
            .str(self.loss.name())
            .str(self.scale.name())
            .u64(self.seed);
        self.sampler.mix(&mut h);
        h.finish()
    }

    /// The cell's private RNG stream, seeded by its fingerprint: results
    /// do not depend on evaluation order or on cache hits, which is what
    /// makes warm reruns byte-identical to cold ones.
    pub fn rng(&self) -> Rng64 {
        Rng64::new(self.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(sampler: SamplerSpec) -> ExperimentSpec {
        ExperimentSpec {
            table: "table2",
            dataset: "cifar10",
            loss: LossKind::Ce,
            sampler,
            scale: Scale::Small,
            seed: 42,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let a = cell(SamplerSpec::eos(10));
        assert_eq!(a.fingerprint(), cell(SamplerSpec::eos(10)).fingerprint());
        // Every field moves the fingerprint.
        assert_ne!(
            a.fingerprint(),
            cell(SamplerSpec::eos(50)).fingerprint(),
            "sampler params"
        );
        assert_ne!(
            a.fingerprint(),
            cell(SamplerSpec::Smote { k: 5 }).fingerprint(),
            "sampler kind"
        );
        let mut b = a;
        b.loss = LossKind::Ldam;
        assert_ne!(a.fingerprint(), b.fingerprint(), "loss");
        let mut c = a;
        c.seed = 43;
        assert_ne!(a.fingerprint(), c.fingerprint(), "seed");
        let mut d = a;
        d.scale = Scale::Medium;
        assert_ne!(a.fingerprint(), d.fingerprint(), "scale");
        let mut e = a;
        e.table = "table4";
        assert_ne!(a.fingerprint(), e.fingerprint(), "table");
    }

    #[test]
    fn sampler_names_match_instances() {
        for spec in [
            SamplerSpec::Smote { k: 5 },
            SamplerSpec::BorderlineSmote { k: 5, m: 5 },
            SamplerSpec::BalancedSvm { k: 5 },
            SamplerSpec::Remix,
            SamplerSpec::eos(10),
            SamplerSpec::GapAwareEos { k: 10 },
            SamplerSpec::GamoLite,
            SamplerSpec::BaganLite,
            SamplerSpec::DeepSmote,
            SamplerSpec::CGan,
        ] {
            let built = spec.build().expect("non-baseline");
            assert_eq!(built.name(), spec.name());
        }
        assert!(SamplerSpec::Baseline.build().is_none());
    }

    #[test]
    fn classic_lineup_order_matches_paper() {
        let names: Vec<_> = SamplerSpec::classic_lineup()
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(names, vec!["SMOTE", "B-SMOTE", "Bal-SVM"]);
    }

    #[test]
    fn mix_rng_separates_part_boundaries() {
        let a = mix_rng(1, &["ab", "c"]).next_u64();
        let b = mix_rng(1, &["a", "bc"]).next_u64();
        assert_ne!(a, b);
        // XOR-symmetric collisions of the old scheme are gone: order matters.
        let c = mix_rng(1, &["x", "y"]).next_u64();
        let d = mix_rng(1, &["y", "x"]).next_u64();
        assert_ne!(c, d);
    }
}
