//! Crash-safe per-cell results journal.
//!
//! The backbone cache makes reruns cheap; the journal makes them
//! *resumable*: every completed experiment cell stores its output rows
//! under a fingerprint of everything that determines them (`journal/v1`
//! over table, cell label, scale and master seed), one file per cell
//! under `<cache>/journal/`. A rerun of the suite replays journaled
//! cells instead of recomputing them, so a run killed mid-suite picks up
//! where it died and its completed output is byte-identical to an
//! uninterrupted run.
//!
//! The store is append-only in the unit of cells: files are only ever
//! added (each written atomically via [`eos_trace::write_atomic`], so a
//! crash mid-store leaves at most an orphan temp file, never a torn
//! entry). Cell outputs are the *strings* the tables render — already
//! deterministic and formatted — so replay cannot shift a digit. Numeric
//! side-channel values (fig7 learning curves, the pixel-EOS headline
//! BAC) cross the journal as the 16-hex-digit bit pattern of their
//! `f64`, decoded exactly on replay.
//!
//! Entry layout (all integers little-endian):
//!
//! ```text
//! "EOSJ" | u32 version | u64 fp | u64 n_rows
//!   n_rows x ( u64 n_cells, n_cells x ( u64 len, bytes ) )
//! | u64 FNV-1a of everything above
//! ```
//!
//! A truncated, bit-flipped or structurally impossible entry fails its
//! load with `Err`; callers treat that as "not journaled" and recompute
//! — identical bits, since cells derive their RNG from their spec
//! fingerprint, not from the journal.

use crate::exp::spec::Fnv;
use std::io::{self, Read};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"EOSJ";
const VERSION: u32 = 1;

/// One cell's output: the rows it contributes to its table, each a list
/// of already-formatted strings.
pub type Rows = Vec<Vec<String>>;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Fingerprint identifying one cell's journal entry: the table, the cell
/// label within it, and the run identity (scale, seed). Versioned so a
/// row-format change orphans old entries instead of misreading them.
pub fn cell_fingerprint(table: &str, label: &str, scale: &str, seed: u64) -> u64 {
    let mut h = Fnv::new();
    h.str("journal/v1")
        .str(table)
        .str(label)
        .str(scale)
        .u64(seed);
    h.finish()
}

/// The journal rooted at one directory (conventionally
/// `<cache>/journal/`).
pub struct Journal {
    dir: PathBuf,
}

impl Journal {
    /// Journal rooted at an explicit directory.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        Journal { dir: dir.into() }
    }

    /// The directory entries live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for cell fingerprint `fp`.
    pub fn cell_path(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("cell_{fp:016x}.eosj"))
    }

    /// Stores one cell's rows under `fp`, atomically. Returns the entry
    /// size in bytes.
    pub fn store(&self, fp: u64, rows: &Rows) -> io::Result<u64> {
        let mut payload = Vec::new();
        payload.extend_from_slice(MAGIC);
        payload.extend_from_slice(&VERSION.to_le_bytes());
        payload.extend_from_slice(&fp.to_le_bytes());
        payload.extend_from_slice(&(rows.len() as u64).to_le_bytes());
        for row in rows {
            payload.extend_from_slice(&(row.len() as u64).to_le_bytes());
            for cell in row {
                payload.extend_from_slice(&(cell.len() as u64).to_le_bytes());
                payload.extend_from_slice(cell.as_bytes());
            }
        }
        let mut h = Fnv::new();
        h.bytes(&payload);
        payload.extend_from_slice(&h.finish().to_le_bytes());
        std::fs::create_dir_all(&self.dir)?;
        eos_trace::write_atomic(&self.cell_path(fp), &payload)?;
        Ok(payload.len() as u64)
    }

    /// Loads the entry stored under `fp`. `Ok(None)` means the cell was
    /// never journaled; `Err` means an entry exists but cannot be
    /// trusted — the caller recomputes in both cases.
    pub fn load(&self, fp: u64) -> io::Result<Option<Rows>> {
        let path = self.cell_path(fp);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        Ok(Some(parse(fp, &bytes)?))
    }
}

fn parse(fp: u64, bytes: &[u8]) -> io::Result<Rows> {
    if bytes.len() < 8 {
        return Err(bad("entry shorter than its checksum"));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored_sum = u64::from_le_bytes(tail.try_into().unwrap());
    let mut h = Fnv::new();
    h.bytes(payload);
    if h.finish() != stored_sum {
        return Err(bad("checksum mismatch (truncated or corrupt entry)"));
    }
    let mut r = payload;
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not an EOSJ journal entry"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported EOSJ version {version}")));
    }
    let stored_fp = read_u64(&mut r)?;
    if stored_fp != fp {
        return Err(bad("fingerprint mismatch (entry stored under wrong name)"));
    }
    let n_rows = read_u64(&mut r)? as usize;
    let mut rows = Vec::new();
    for _ in 0..n_rows {
        let n_cells = read_u64(&mut r)? as usize;
        let mut row = Vec::new();
        for _ in 0..n_cells {
            let len = read_u64(&mut r)? as usize;
            if len > r.len() {
                return Err(bad("string length exceeds entry"));
            }
            let (s, rest) = r.split_at(len);
            row.push(String::from_utf8(s.to_vec()).map_err(|_| bad("cell text is not UTF-8"))?);
            r = rest;
        }
        rows.push(row);
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes after the row block"));
    }
    Ok(rows)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Encodes an `f64` as its exact 16-hex-digit bit pattern for a journal
/// row, so replayed values are bit-identical to computed ones.
pub fn enc_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes [`enc_f64`]'s encoding. `Err` means the row does not carry a
/// bit pattern — a version-skewed or hand-edited entry.
pub fn dec_f64(s: &str) -> io::Result<f64> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| bad(format!("'{s}' is not an f64 bit pattern")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_journal(tag: &str) -> Journal {
        let dir = std::env::temp_dir().join(format!("eos_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Journal::at(dir)
    }

    fn sample_rows() -> Rows {
        vec![
            vec!["EOS".into(), "0.731".into(), "+4.2".into()],
            vec!["SMOTE".into(), "".into(), "naïve-utf8 ✓".into()],
            vec![],
        ]
    }

    #[test]
    fn roundtrip_preserves_rows_exactly() {
        let j = temp_journal("roundtrip");
        let fp = cell_fingerprint("table2", "celeba/Ce", "smoke", 42);
        assert!(j.load(fp).unwrap().is_none(), "fresh journal is empty");
        let rows = sample_rows();
        let stored = j.store(fp, &rows).unwrap();
        assert!(stored > 0);
        assert_eq!(j.load(fp).unwrap().unwrap(), rows);
        let _ = std::fs::remove_dir_all(j.dir());
    }

    #[test]
    fn corrupt_entries_fail_loudly_not_fatally() {
        let j = temp_journal("corrupt");
        let fp = 7;
        j.store(fp, &sample_rows()).unwrap();
        let path = j.cell_path(fp);
        let good = std::fs::read(&path).unwrap();
        for cut in [3, good.len() / 2, good.len() - 2] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(j.load(fp).is_err(), "cut at {cut} accepted");
        }
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(j.load(fp).is_err());
        // An entry stored under the wrong fingerprint is rejected too.
        std::fs::write(&path, &good).unwrap();
        assert!(j.load(fp).unwrap().is_some());
        std::fs::rename(&path, j.cell_path(8)).unwrap();
        assert!(j.load(8).is_err());
        let _ = std::fs::remove_dir_all(j.dir());
    }

    #[test]
    fn fingerprint_separates_cells_and_runs() {
        let base = cell_fingerprint("table2", "celeba/Ce", "smoke", 42);
        assert_eq!(base, cell_fingerprint("table2", "celeba/Ce", "smoke", 42));
        assert_ne!(base, cell_fingerprint("table3", "celeba/Ce", "smoke", 42));
        assert_ne!(base, cell_fingerprint("table2", "celeba/Ldam", "smoke", 42));
        assert_ne!(base, cell_fingerprint("table2", "celeba/Ce", "small", 42));
        assert_ne!(base, cell_fingerprint("table2", "celeba/Ce", "smoke", 43));
    }

    #[test]
    fn f64_bits_round_trip() {
        for v in [0.0, -0.0, 1.5, -3.25e300, f64::MIN_POSITIVE, f64::NAN] {
            let back = dec_f64(&enc_f64(v)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        assert!(dec_f64("not-hex").is_err());
        assert!(dec_f64("0.731").is_err());
    }
}
