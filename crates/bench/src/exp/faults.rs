//! Deterministic fault injection for the experiment engine.
//!
//! The `EOS_FAULTS` environment variable carries a comma-separated list
//! of fault rules, each `point:trigger:kind`:
//!
//! ```text
//! EOS_FAULTS='cache.write:3:io'          # 3rd cache write fails with EIO
//! EOS_FAULTS='cell:fig6/SMOTE:panic'     # every fig6/SMOTE cell panics
//! EOS_FAULTS='cell:4:abort'              # the process aborts at the 4th
//!                                        # cell boundary (simulated kill)
//! EOS_FAULTS='train:p0.25@7:diverge'     # each training diverges with
//!                                        # p=0.25 on a seeded draw
//! ```
//!
//! - **point** — where the fault fires: `cache.read`, `cache.write`,
//!   `cache.claim`, `train` (once per backbone training, before it
//!   starts), `train.epoch` (at every completed epoch boundary, after
//!   the checkpoint save — `train.epoch:2:abort` is the mid-training
//!   kill of the resume gate), or `cell`.
//! - **trigger** — `N` (digits: fires exactly on the N-th hit of that
//!   point, counted per process), `pP[@SEED]` (seeded probabilistic:
//!   fires on each hit with probability `P`, drawn deterministically
//!   from the hit index), or any other string (fires on every hit whose
//!   label contains it as a substring; cells are labelled
//!   `table/job`, cache points by the backbone fingerprint hex).
//! - **kind** — `io` (transient-looking IO error, absorbed by the retry
//!   policy if it stops recurring), `corrupt` (an `InvalidData` error,
//!   never retried), `panic`, `diverge` (train point: a synthetic
//!   non-finite loss), or `abort` (immediate `process::abort`, the
//!   deterministic stand-in for `kill -9` in the resume gate).
//!
//! Injections are deterministic: the N-th-hit counters advance exactly
//! the same way in any serial rerun, and the probabilistic mode draws
//! from `(seed, point, hit)` — never from wall-clock or OS entropy.
//! Every firing ticks `exp.fault.injected` (plus a per-point counter)
//! and logs to stderr, so healed runs are auditable.
//!
//! [`retry_io`] is the matching bounded retry-with-backoff policy used
//! by the cache paths: transient IO errors are retried a fixed number of
//! times (ticking `exp.fault.retry`), `InvalidData` (corruption) is not.

use crate::exp::spec::Fnv;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The injection points, in spec order.
pub const FAULT_POINTS: [&str; 6] = [
    "cache.read",
    "cache.write",
    "cache.claim",
    "train",
    "train.epoch",
    "cell",
];

/// IO retry policy: attempts per operation (1 initial + 2 retries).
pub const IO_ATTEMPTS: u32 = 3;

/// What an injected fault does at its injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient-looking `io::Error` (retryable).
    Io,
    /// An `InvalidData` error — the corruption class, never retried.
    Corrupt,
    /// A plain panic, exercising the scheduler's per-task isolation.
    Panic,
    /// A synthetic non-finite training loss (train point only).
    Diverge,
    /// `process::abort()` — the deterministic kill for the resume gate.
    Abort,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Io => "io",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Panic => "panic",
            FaultKind::Diverge => "diverge",
            FaultKind::Abort => "abort",
        }
    }
}

#[derive(Debug, Clone)]
enum Trigger {
    /// Fires exactly on the N-th hit of the point (1-based).
    Nth(u64),
    /// Fires on every hit whose label contains the substring.
    Label(String),
    /// Fires with probability `p` on a draw seeded by (seed, point, hit).
    Prob { p: f64, seed: u64 },
}

#[derive(Debug, Clone)]
struct FaultRule {
    point: usize,
    trigger: Trigger,
    kind: FaultKind,
}

/// A parsed fault plan with per-point hit counters. An empty plan (the
/// production default) costs one atomic increment per injection point.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    hits: [AtomicU64; FAULT_POINTS.len()],
}

impl FaultPlan {
    /// The no-faults plan.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True when no rules are armed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses a spec string (the `EOS_FAULTS` grammar above).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::empty();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut fields = part.splitn(3, ':');
            let (point, trigger, kind) = match (fields.next(), fields.next(), fields.next()) {
                (Some(p), Some(t), Some(k)) => (p, t, k),
                _ => return Err(format!("fault rule '{part}' is not point:trigger:kind")),
            };
            let point = FAULT_POINTS
                .iter()
                .position(|&name| name == point)
                .ok_or_else(|| {
                    format!(
                        "unknown fault point '{point}' (choices: {})",
                        FAULT_POINTS.join(", ")
                    )
                })?;
            let trigger = if trigger.bytes().all(|b| b.is_ascii_digit()) && !trigger.is_empty() {
                let n: u64 = trigger
                    .parse()
                    .map_err(|_| format!("bad hit index '{trigger}'"))?;
                if n == 0 {
                    return Err("hit indices are 1-based; use 1 for the first hit".into());
                }
                Trigger::Nth(n)
            } else if let Some(prob) = trigger.strip_prefix('p') {
                let (p_str, seed_str) = match prob.split_once('@') {
                    Some((p, s)) => (p, Some(s)),
                    None => (prob, None),
                };
                match p_str.parse::<f64>() {
                    Ok(p) if (0.0..=1.0).contains(&p) => {
                        let seed = match seed_str {
                            Some(s) => s
                                .parse()
                                .map_err(|_| format!("bad probability seed '{s}'"))?,
                            None => 0,
                        };
                        Trigger::Prob { p, seed }
                    }
                    // 'p...' that is not a probability is a label match.
                    _ => Trigger::Label(trigger.to_string()),
                }
            } else {
                Trigger::Label(trigger.to_string())
            };
            let kind = match kind {
                "io" => FaultKind::Io,
                "corrupt" => FaultKind::Corrupt,
                "panic" => FaultKind::Panic,
                "diverge" => FaultKind::Diverge,
                "abort" => FaultKind::Abort,
                other => {
                    return Err(format!(
                        "unknown fault kind '{other}' (choices: io, corrupt, panic, diverge, abort)"
                    ))
                }
            };
            plan.rules.push(FaultRule {
                point,
                trigger,
                kind,
            });
        }
        Ok(plan)
    }

    /// Parses `$EOS_FAULTS`; unset or empty means no faults.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("EOS_FAULTS") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec),
            _ => Ok(FaultPlan::empty()),
        }
    }

    /// Records a hit at `point` and returns the armed fault kind if a
    /// rule fires. `label` identifies the work item for label-matched
    /// rules and the stderr audit line.
    pub fn fire(&self, point: &str, label: &str) -> Option<FaultKind> {
        let idx = FAULT_POINTS
            .iter()
            .position(|&name| name == point)
            .unwrap_or_else(|| panic!("unknown fault point '{point}'"));
        let hit = self.hits[idx].fetch_add(1, Ordering::SeqCst) + 1;
        if self.rules.is_empty() {
            return None;
        }
        let kind = self.rules.iter().find_map(|rule| {
            if rule.point != idx {
                return None;
            }
            let fires = match &rule.trigger {
                Trigger::Nth(n) => hit == *n,
                Trigger::Label(s) => label.contains(s.as_str()),
                Trigger::Prob { p, seed } => {
                    let draw = Fnv::new()
                        .str("fault-draw")
                        .str(point)
                        .u64(*seed)
                        .u64(hit)
                        .finish();
                    // Top 53 bits -> uniform in [0, 1).
                    ((draw >> 11) as f64 / (1u64 << 53) as f64) < *p
                }
            };
            fires.then_some(rule.kind)
        })?;
        eos_trace::counter("exp.fault.injected").add(1);
        eos_trace::counter(&format!("exp.fault.injected.{point}")).add(1);
        eprintln!(
            "[faults] injecting {} at {point} hit {hit} (label '{label}')",
            kind.name()
        );
        Some(kind)
    }

    /// [`FaultPlan::fire`] for the cache's IO points: maps the armed kind
    /// onto the `io::Result` surface (`Io`/`Diverge` → a retryable error,
    /// `Corrupt` → `InvalidData`), panics or aborts in place for the
    /// process-level kinds.
    pub fn fire_io(&self, point: &str, label: &str) -> io::Result<()> {
        match self.fire(point, label) {
            None => Ok(()),
            Some(FaultKind::Corrupt) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("injected corrupt fault at {point}"),
            )),
            Some(FaultKind::Io) | Some(FaultKind::Diverge) => {
                Err(io::Error::other(format!("injected io fault at {point}")))
            }
            Some(FaultKind::Panic) => panic!("injected panic fault at {point} (label '{label}')"),
            Some(FaultKind::Abort) => {
                eprintln!("[faults] aborting process at {point} (label '{label}')");
                std::process::abort();
            }
        }
    }
}

/// Bounded retry-with-backoff for transient IO: up to [`IO_ATTEMPTS`]
/// attempts with a short growing sleep between them. `InvalidData`
/// (the corruption class) is returned immediately — rereading corrupt
/// bytes cannot heal them, the caller's recompute path can. Each retry
/// ticks `exp.fault.retry`.
pub fn retry_io<T>(what: &str, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut delay = Duration::from_millis(2);
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
            Err(e) if attempt >= IO_ATTEMPTS => return Err(e),
            Err(e) => {
                eos_trace::counter("exp.fault.retry").add(1);
                eprintln!(
                    "[exp] transient {what} error (attempt {attempt}/{IO_ATTEMPTS}): {e}; retrying"
                );
                std::thread::sleep(delay);
                delay *= 5;
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_round_trips() {
        let plan =
            FaultPlan::parse("cache.write:3:io, cell:fig6/2:panic,train:p0.25@7:diverge").unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert!(matches!(plan.rules[0].trigger, Trigger::Nth(3)));
        assert_eq!(plan.rules[0].kind, FaultKind::Io);
        assert!(matches!(plan.rules[1].trigger, Trigger::Label(ref s) if s == "fig6/2"));
        assert!(
            matches!(plan.rules[2].trigger, Trigger::Prob { p, seed } if p == 0.25 && seed == 7)
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn grammar_rejects_garbage_naming_choices() {
        let e = FaultPlan::parse("disk:1:io").unwrap_err();
        assert!(
            e.contains("disk") && e.contains("cache.read") && e.contains("cell"),
            "{e}"
        );
        let e = FaultPlan::parse("cache.read:1:explode").unwrap_err();
        assert!(e.contains("explode") && e.contains("abort"), "{e}");
        assert!(FaultPlan::parse("cache.read:1").is_err());
        assert!(FaultPlan::parse("cache.read:0:io").is_err());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let plan = FaultPlan::parse("cache.write:2:io").unwrap();
        assert_eq!(plan.fire("cache.write", "a"), None);
        assert_eq!(plan.fire("cache.write", "b"), Some(FaultKind::Io));
        assert_eq!(plan.fire("cache.write", "c"), None);
        // Other points share nothing with this rule.
        assert_eq!(plan.fire("cache.read", "a"), None);
    }

    #[test]
    fn label_trigger_fires_on_every_matching_hit() {
        let plan = FaultPlan::parse("cell:table5:panic").unwrap();
        assert_eq!(plan.fire("cell", "table2/svhn/Ce"), None);
        assert_eq!(plan.fire("cell", "table5/resnet"), Some(FaultKind::Panic));
        assert_eq!(plan.fire("cell", "table5/wide"), Some(FaultKind::Panic));
    }

    #[test]
    fn probabilistic_trigger_is_deterministic() {
        let a = FaultPlan::parse("train:p0.5@11:diverge").unwrap();
        let b = FaultPlan::parse("train:p0.5@11:diverge").unwrap();
        let fires_a: Vec<bool> = (0..64).map(|_| a.fire("train", "x").is_some()).collect();
        let fires_b: Vec<bool> = (0..64).map(|_| b.fire("train", "x").is_some()).collect();
        assert_eq!(fires_a, fires_b);
        let n = fires_a.iter().filter(|&&f| f).count();
        assert!(
            n > 8 && n < 56,
            "p=0.5 should fire roughly half the time, got {n}/64"
        );
    }

    #[test]
    fn fire_io_maps_kinds_onto_error_classes() {
        let plan = FaultPlan::parse("cache.read:1:corrupt,cache.read:2:io").unwrap();
        let corrupt = plan.fire_io("cache.read", "x").unwrap_err();
        assert_eq!(corrupt.kind(), io::ErrorKind::InvalidData);
        let io = plan.fire_io("cache.read", "x").unwrap_err();
        assert_ne!(io.kind(), io::ErrorKind::InvalidData);
        assert!(plan.fire_io("cache.read", "x").is_ok());
    }

    #[test]
    fn retry_absorbs_transients_but_not_corruption() {
        let mut left = 2;
        let healed = retry_io("test", || {
            if left > 0 {
                left -= 1;
                Err(io::Error::other("transient"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(healed.unwrap(), 7);

        let mut calls = 0;
        let corrupt: io::Result<()> = retry_io("test", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::InvalidData, "bad bytes"))
        });
        assert_eq!(corrupt.unwrap_err().kind(), io::ErrorKind::InvalidData);
        assert_eq!(calls, 1, "corruption must not be retried");

        let mut calls = 0;
        let exhausted: io::Result<()> = retry_io("test", || {
            calls += 1;
            Err(io::Error::other("still broken"))
        });
        assert!(exhausted.is_err());
        assert_eq!(calls, IO_ATTEMPTS);
    }
}
