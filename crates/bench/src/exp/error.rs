//! Typed errors for the experiment engine's production paths.
//!
//! Everything that used to panic between "parse the CLI" and "render the
//! table" now surfaces as an [`EngineError`], so one bad cell — a corrupt
//! cache entry nobody can reparse, a diverged training, a panicking job —
//! fails *that cell* and the suite keeps the work every other cell
//! finished. The taxonomy mirrors the failure domains of the stack:
//!
//! - [`EngineError::Io`] — the filesystem said no (after bounded
//!   retries for transient classes, see [`crate::exp::faults::retry_io`]).
//! - [`EngineError::CorruptCache`] — an artifact or journal entry failed
//!   its checksum/structure checks *and* could not be healed by
//!   recomputation in this run.
//! - [`EngineError::LockTimeout`] — a claim-file holder outlived the
//!   engine's bounded lock wait (replaces PR 6's infinite polling).
//! - [`EngineError::TrainDivergence`] — the existing
//!   [`eos_nn::TrainError`] (non-finite loss), carried instead of the
//!   release-mode panic `train_epochs` raises.
//! - [`EngineError::TaskPanic`] — a scheduler job panicked; the payload
//!   message is captured per task instead of resume-unwinding the batch.
//! - [`EngineError::Cells`] — a table's roll-up: which cells failed and
//!   why, with every *successful* sibling already journaled on disk.

use eos_nn::TrainError;
use std::fmt;
use std::io;
use std::time::Duration;

/// One failed experiment cell inside a table roll-up.
#[derive(Debug)]
pub struct CellFailure {
    /// Cell label, `table/job` (e.g. `table2/celeba/Ce`).
    pub cell: String,
    /// What took the cell down.
    pub error: EngineError,
}

/// A typed failure on the experiment engine's production path.
#[derive(Debug)]
pub enum EngineError {
    /// Filesystem failure that survived the bounded retry policy.
    Io {
        /// What was being attempted (`"cache read 0xfp"`, ...).
        what: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A cache or journal entry whose bytes cannot be trusted and whose
    /// recomputation is not possible in this context.
    CorruptCache {
        /// Which entry (path or cell label).
        what: String,
        /// The structural check that failed.
        detail: String,
    },
    /// The bounded wait for another worker's claim lock expired.
    LockTimeout {
        /// The backbone fingerprint being waited on.
        fp: u64,
        /// How long the engine waited before giving up.
        waited: Duration,
    },
    /// Backbone or head training produced a non-finite loss.
    TrainDivergence {
        /// What was training (`"backbone 0xfp"`, ...).
        what: String,
        /// The structured divergence record from the trainer.
        source: TrainError,
    },
    /// A scheduler task panicked; the batch survived, this cell did not.
    TaskPanic {
        /// Cell label of the panicking task.
        label: String,
        /// The panic payload, downcast to a string where possible.
        message: String,
    },
    /// A table's aggregate failure: every cell that did not complete.
    Cells {
        /// Which table.
        table: &'static str,
        /// The failed cells, in job order.
        failures: Vec<CellFailure>,
    },
}

impl EngineError {
    /// Wraps an [`io::Error`] with what was being attempted.
    pub fn io(what: impl Into<String>, source: io::Error) -> Self {
        EngineError::Io {
            what: what.into(),
            source,
        }
    }

    /// A corrupt-entry error for `what` with a structural `detail`.
    pub fn corrupt(what: impl Into<String>, detail: impl Into<String>) -> Self {
        EngineError::CorruptCache {
            what: what.into(),
            detail: detail.into(),
        }
    }

    /// Short lower-case tag naming the variant (stable, used by the
    /// failure report and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineError::Io { .. } => "io",
            EngineError::CorruptCache { .. } => "corrupt-cache",
            EngineError::LockTimeout { .. } => "lock-timeout",
            EngineError::TrainDivergence { .. } => "train-divergence",
            EngineError::TaskPanic { .. } => "task-panic",
            EngineError::Cells { .. } => "cells",
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Io { what, source } => write!(f, "io error during {what}: {source}"),
            EngineError::CorruptCache { what, detail } => {
                write!(f, "corrupt cache entry {what}: {detail}")
            }
            EngineError::LockTimeout { fp, waited } => write!(
                f,
                "timed out after {:.1}s waiting for the claim on backbone {fp:016x}",
                waited.as_secs_f64()
            ),
            EngineError::TrainDivergence { what, source } => {
                write!(f, "training diverged in {what}: {source}")
            }
            EngineError::TaskPanic { label, message } => {
                write!(f, "task '{label}' panicked: {message}")
            }
            EngineError::Cells { table, failures } => {
                write!(f, "{table}: {} cell(s) failed", failures.len())?;
                for fail in failures {
                    write!(
                        f,
                        "\n  {} :: [{}] {}",
                        fail.cell,
                        fail.error.kind(),
                        fail.error
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io { source, .. } => Some(source),
            EngineError::TrainDivergence { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Prints the structured failure report the table binaries and the suite
/// emit before exiting nonzero. Completed cells stay journaled — the
/// report says so, because the whole point is that a rerun resumes.
pub fn report_failure(tag: &str, err: &EngineError) {
    eprintln!("[{tag}] FAILURE REPORT");
    match err {
        EngineError::Cells { table, failures } => {
            eprintln!("[{tag}]   {table}: {} cell(s) failed:", failures.len());
            for fail in failures {
                eprintln!(
                    "[{tag}]     {} :: [{}] {}",
                    fail.cell,
                    fail.error.kind(),
                    fail.error
                );
            }
        }
        other => eprintln!("[{tag}]   [{}] {other}", other.kind()),
    }
    eprintln!("[{tag}]   completed cells are journaled; rerun to resume from them");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let io = EngineError::io("cache read", io::Error::other("disk on fire"));
        assert!(io.to_string().contains("cache read"));
        assert!(io.to_string().contains("disk on fire"));
        assert_eq!(io.kind(), "io");

        let corrupt = EngineError::corrupt("bb_0001.eosc", "checksum mismatch");
        assert!(corrupt.to_string().contains("checksum mismatch"));
        assert_eq!(corrupt.kind(), "corrupt-cache");

        let timeout = EngineError::LockTimeout {
            fp: 0xdead,
            waited: Duration::from_secs(3),
        };
        assert!(timeout.to_string().contains("000000000000dead"));
        assert_eq!(timeout.kind(), "lock-timeout");

        let panic = EngineError::TaskPanic {
            label: "table2/svhn/Ce".into(),
            message: "boom".into(),
        };
        assert!(panic.to_string().contains("table2/svhn/Ce"));
        assert_eq!(panic.kind(), "task-panic");

        let cells = EngineError::Cells {
            table: "fig6",
            failures: vec![CellFailure {
                cell: "fig6/SMOTE".into(),
                error: panic,
            }],
        };
        let text = cells.to_string();
        assert!(text.contains("fig6") && text.contains("task-panic") && text.contains("boom"));
        assert_eq!(cells.kind(), "cells");
    }
}
