//! Shared experiment plumbing: dataset preparation and the standard
//! oversampler line-ups.

use eos_core::Scale;
use eos_data::{Dataset, SynthSpec};
use eos_resample::{BalancedSvm, BorderlineSmote, Oversampler, Smote};

/// Generates and standardises a dataset analogue: train statistics are
/// applied to both splits, matching the paper's normalised-input setup.
pub fn prepared_dataset(name: &str, scale: Scale, seed: u64) -> (Dataset, Dataset) {
    let mut spec = SynthSpec::by_name(name, scale.data_scale());
    if scale == Scale::Smoke {
        // Smoke gates must exercise every code path in seconds: shrink the
        // per-class budget and flatten extreme imbalance so even the rare
        // classes keep a handful of samples.
        spec.n_max_train = (spec.n_max_train / 8).max(40);
        spec.imbalance_ratio = spec.imbalance_ratio.min(10.0);
        spec.n_test_per_class = (spec.n_test_per_class / 5).max(20);
    }
    let (mut train, mut test) = spec.generate(seed);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    (train, test)
}

/// The three classical oversamplers used across Tables I and II, in the
/// paper's column order.
pub fn samplers_for_table2() -> Vec<Box<dyn Oversampler>> {
    vec![
        Box::new(Smote::new(5)),
        Box::new(BorderlineSmote::new(5, 5)),
        Box::new(BalancedSvm::new(5)),
    ]
}

/// FNV-1a hash of a name — used to derive per-cell RNG streams.
pub fn name_hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_dataset_is_standardized() {
        let (train, test) = prepared_dataset("celeba", Scale::Small, 0);
        let mean = train.x.mean_rows();
        assert!(mean.data().iter().all(|m| m.abs() < 1e-4));
        assert_eq!(train.shape, test.shape);
    }

    #[test]
    fn sampler_lineup_order() {
        let s = samplers_for_table2();
        let names: Vec<&str> = s.iter().map(|x| x.name()).collect();
        assert_eq!(names, vec!["SMOTE", "B-SMOTE", "Bal-SVM"]);
    }
}
