//! Markdown / CSV report output.

use std::fmt::Write as _;

/// A simple aligned markdown table builder.
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        MarkdownTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        let _ = cols;
        out
    }

    /// CSV rendering (no alignment padding).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Writes a table's CSV form under `results/<name>.csv` via the shared
/// `eos-trace` results writer, and reports where it went.
pub fn write_csv(table: &MarkdownTable, name: &str) {
    if let Some(path) = eos_trace::write_results(&format!("{name}.csv"), &table.to_csv()) {
        println!("\n[csv written to {}]", path.display());
    }
}

/// Formats a metric in the paper's `.1234` style (`1.000` when saturated).
pub fn paper_fmt(v: f64) -> String {
    if v >= 0.99995 {
        "1.000".to_string()
    } else {
        format!(".{:04.0}", (v * 10_000.0).round())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = MarkdownTable::new(&["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("| a | long-header |"));
        assert!(r.contains("| x | 1           |"));
        assert!(r.lines().count() == 3);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = MarkdownTable::new(&["name"]);
        t.row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn paper_format() {
        assert_eq!(paper_fmt(0.7581), ".7581");
        assert_eq!(paper_fmt(0.9), ".9000");
        assert_eq!(paper_fmt(1.0), "1.000");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = MarkdownTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
