//! Figure 5 binary — see [`eos_bench::tables::fig5`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::fig5::run(&eng, &args);
    eng.finish("fig5");
}
