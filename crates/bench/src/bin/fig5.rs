//! Figure 5 binary — see [`eos_bench::tables::fig5`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::fig5::run(&eng, &args);
    eng.finish("fig5");
    if let Err(e) = result {
        eos_bench::exp::report_failure("fig5", &e);
        std::process::exit(1);
    }
}
