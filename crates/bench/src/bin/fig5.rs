//! Figure 5 binary — see [`eos_bench::tables::fig5`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::fig5::run(&mut eng, &args);
    eng.finish("fig5");
}
