//! Figure 5 — Classifier weight norms per class, before and after
//! embedding-space oversampling.
//!
//! Paper shape: cost-sensitive baselines leave monotonically shrinking
//! norms toward the minority classes; oversampled heads flatten them, and
//! EOS usually shows the largest, most even norms.

use eos_bench::{name_hash, prepared_dataset, samplers_for_table2, write_csv, Args, MarkdownTable};
use eos_core::{head_weight_norms, Eos, ThreePhase};
use eos_nn::LossKind;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&["Dataset", "Algo", "Method", "Class", "Norm"]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        let _ = &test;
        for loss in LossKind::ALL {
            let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ loss as u64);
            eprintln!("[fig5] {dataset} / {} ...", loss.name());
            let mut tp = ThreePhase::train(&train, loss, &cfg, &mut rng);
            let record = |method: &str, norms: &[f32], table: &mut MarkdownTable| {
                for (c, &n) in norms.iter().enumerate() {
                    table.row(vec![
                        dataset.to_string(),
                        loss.name().into(),
                        method.into(),
                        c.to_string(),
                        format!("{n:.4}"),
                    ]);
                }
            };
            record("Baseline", &head_weight_norms(&tp.net), &mut table);
            for sampler in samplers_for_table2() {
                let _ = tp.finetune_head(Some(sampler.as_ref()), &cfg, &mut rng);
                record(sampler.name(), &head_weight_norms(&tp.net), &mut table);
            }
            let _ = tp.finetune_head(Some(&Eos::new(10)), &cfg, &mut rng);
            record("EOS", &head_weight_norms(&tp.net), &mut table);
        }
    }
    println!(
        "\nFigure 5 reproduction — classifier weight norms per class (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "fig5");
}
