//! Figure 4 binary — see [`eos_bench::tables::fig4`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::fig4::run(&eng, &args);
    eng.finish("fig4");
    if let Err(e) = result {
        eos_bench::exp::report_failure("fig4", &e);
        std::process::exit(1);
    }
}
