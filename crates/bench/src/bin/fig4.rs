//! Figure 4 — Generalization gap of test false positives vs true
//! positives, per dataset.
//!
//! Paper shape: the FP gap is 2–4× the TP gap on every dataset — models
//! generalize (TPs) exactly where train and test embedding ranges align.

use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{evaluate, tp_fp_gap, ThreePhase};
use eos_nn::LossKind;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&["Dataset", "TP gap", "FP gap", "FP/TP"]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        let mut rng = Rng64::new(args.seed ^ name_hash(dataset));
        eprintln!("[fig4] {dataset} ...");
        let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
        let test_fe = tp.embed(&test);
        let preds = evaluate(&mut tp.net, &test).predictions;
        let report = tp_fp_gap(
            &tp.train_fe,
            &tp.train_y,
            &test_fe,
            &test.y,
            &preds,
            tp.num_classes,
        );
        let ratio = if report.tp_gap > 0.0 {
            report.fp_gap / report.tp_gap
        } else {
            f64::INFINITY
        };
        table.row(vec![
            dataset.to_string(),
            format!("{:.3}", report.tp_gap),
            format!("{:.3}", report.fp_gap),
            format!("{:.2}x", ratio),
        ]);
    }
    println!(
        "\nFigure 4 reproduction — FP vs TP generalization gap (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "fig4");
}
