//! Figure 4 binary — see [`eos_bench::tables::fig4`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::fig4::run(&eng, &args);
    eng.finish("fig4");
}
