//! Table V binary — see [`eos_bench::tables::table5`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::table5::run(&eng, &args);
    eng.finish("table5");
}
