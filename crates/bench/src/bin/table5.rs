//! Table V — Alternative CNN architectures with and without EOS
//! (cifar10 analogue, K = 10).
//!
//! Paper shape: EOS improves every architecture family (ResNet-56,
//! WideResNet, DenseNet) over its end-to-end baseline.

use eos_bench::report::paper_fmt;
use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{Eos, ThreePhase};
use eos_nn::{Architecture, LossKind};
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let mut cfg = args.scale.pipeline();
    let (train, test) = prepared_dataset("cifar10", args.scale, args.seed);
    let mut table = MarkdownTable::new(&["Network", "BAC", "GM", "FM"]);
    let archs: Vec<(&str, Architecture)> = vec![
        (
            "ResNet (deeper)",
            Architecture::ResNet {
                blocks_per_stage: 2,
                width: 8,
            },
        ),
        ("WideResNet", Architecture::WideResNet { k: 2 }),
        (
            "DenseNet",
            Architecture::DenseNet {
                growth: 6,
                layers_per_block: 2,
            },
        ),
    ];
    for (name, arch) in &archs {
        cfg.arch = *arch;
        let mut rng = Rng64::new(args.seed ^ name_hash(name));
        eprintln!("[table5] {name} ...");
        let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
        let base = tp.baseline_eval(&test);
        table.row(vec![
            name.to_string(),
            paper_fmt(base.bac),
            paper_fmt(base.gm),
            paper_fmt(base.f1),
        ]);
        let eos = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
        table.row(vec![
            format!("EOS: {name}"),
            paper_fmt(eos.bac),
            paper_fmt(eos.gm),
            paper_fmt(eos.f1),
        ]);
    }
    println!(
        "\nTable V reproduction — architectures with & without EOS (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table5");
}
