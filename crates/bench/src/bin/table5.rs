//! Table V binary — see [`eos_bench::tables::table5`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::table5::run(&eng, &args);
    eng.finish("table5");
    if let Err(e) = result {
        eos_bench::exp::report_failure("table5", &e);
        std::process::exit(1);
    }
}
