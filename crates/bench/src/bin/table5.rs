//! Table V binary — see [`eos_bench::tables::table5`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::table5::run(&mut eng, &args);
    eng.finish("table5");
}
