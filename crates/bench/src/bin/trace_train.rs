//! Traced training smoke gate for the observability layer.
//!
//! Enables tracing, runs a matrix product big enough to force a dispatched
//! worker-pool job, then a tiny three-phase EOS pipeline, and writes
//! `results/TRACE_train.json` + `.jsonl`. The gate then re-reads both
//! files, validates every byte of JSON, and asserts the span/counter shape
//! the instrumentation promises: exactly three phase spans with epochs and
//! batches nested under them, GEMM dispatch counts that add up, worker-pool
//! utilisation, and synthetic-sample accounting. Exits non-zero on any
//! failure so `scripts/verify.sh` can gate on it.
//!
//! `--smoke` trims the training budget.

use eos_core::{Eos, PipelineConfig, ThreePhase};
use eos_data::SynthSpec;
use eos_nn::{Architecture, LossKind};
use eos_tensor::{normal, par, Rng64};

/// Records a failed expectation without aborting, so one run reports every
/// broken invariant at once.
struct Gate {
    failures: usize,
}

impl Gate {
    fn check(&mut self, cond: bool, what: &str) {
        if cond {
            println!("  ok   {what}");
        } else {
            eprintln!("  FAIL {what}");
            self.failures += 1;
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (backbone_epochs, head_epochs, n_max) = if smoke { (4, 3, 32) } else { (8, 5, 48) };

    let ambient = par::num_threads();
    par::set_num_threads(ambient.max(2));
    eos_trace::set_enabled(true);
    eos_trace::reset();

    // A product large enough to cross the pool's PAR_MIN_WORK threshold,
    // guaranteeing at least one dispatched (not inlined) job in the trace.
    let mut rng = Rng64::new(7);
    let a = normal(&[128, 512], 0.0, 1.0, &mut rng);
    let b = normal(&[512, 128], 0.0, 1.0, &mut rng);
    std::hint::black_box(a.matmul(&b));

    let mut spec = SynthSpec::celeba_like(1);
    spec.n_max_train = n_max;
    spec.imbalance_ratio = 8.0;
    spec.n_test_per_class = 10;
    let (mut train, mut test) = spec.generate(11);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);

    let mut cfg = PipelineConfig::small();
    cfg.arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 4,
    };
    cfg.backbone_epochs = backbone_epochs;
    cfg.head_epochs = head_epochs;

    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let _ = tp.finetune_head(Some(&Eos::new(10)), &cfg, &mut rng);
    let (_gaps, _split) = tp.gap_report(&test);

    let mut g = Gate { failures: 0 };
    g.check(
        tp.history.iter().all(|e| e.loss.is_finite()),
        "backbone losses are finite",
    );

    // --- Span tree shape.
    let snap = eos_trace::snapshot();
    let span_count = |path: &str| snap.span(path).map_or(0, |s| s.count);
    g.check(span_count("eos.phase1") == 1, "eos.phase1 span, once");
    g.check(
        span_count("eos.phase2") == 2,
        "eos.phase2 span, twice (extraction + augmentation)",
    );
    g.check(span_count("eos.phase3") == 1, "eos.phase3 span, once");
    let phases = snap
        .root_spans()
        .iter()
        .filter(|s| s.name.starts_with("eos.phase"))
        .count();
    g.check(phases == 3, "exactly three phase spans at the root");
    g.check(
        span_count("eos.phase1/train.epoch") == backbone_epochs as u64,
        "one train.epoch per backbone epoch under phase 1",
    );
    g.check(
        span_count("eos.phase3/train.epoch") == head_epochs as u64,
        "one train.epoch per head epoch under phase 3",
    );
    let batches = span_count("eos.phase1/train.epoch/train.batch")
        + span_count("eos.phase3/train.epoch/train.batch");
    g.check(batches > 0, "train.batch spans nest under train.epoch");
    g.check(
        span_count("eos.phase2/eos.oversample") == 1,
        "EOS oversampling nests under phase 2",
    );
    g.check(span_count("gap.scan") > 0, "gap scans recorded");
    g.check(snap.events_dropped == 0, "event buffer did not overflow");

    // --- Counters and histograms.
    g.check(
        snap.counter("train.batches") == batches,
        "train.batches counter agrees with batch spans",
    );
    let gemm = snap.counter("gemm.calls");
    g.check(gemm > 0, "GEMM calls recorded");
    g.check(
        snap.counter("gemm.dispatch.avx2") + snap.counter("gemm.dispatch.scalar") == gemm,
        "kernel dispatch counts sum to gemm.calls",
    );
    g.check(
        snap.histogram("gemm.flops").map_or(0, |h| h.count) == gemm,
        "one gemm.flops sample per GEMM call",
    );
    g.check(
        snap.counter("pool.jobs.dispatched") >= 1,
        "at least one worker-pool job was dispatched",
    );
    g.check(
        snap.counter("pool.worker_busy_ns") > 0,
        "worker busy time recorded",
    );
    g.check(
        snap.counter("eos.synthetic_samples") > 0,
        "EOS generated synthetic samples",
    );
    g.check(
        snap.counter("neighbors.tree_queries") + snap.counter("neighbors.brute_queries") > 0,
        "neighbor queries attributed to a backend",
    );
    g.check(
        snap.histogram("train.batch_loss_milli")
            .map_or(0, |h| h.count)
            == batches,
        "one loss sample per batch",
    );

    // --- Export and re-validation from disk.
    match eos_trace::write_trace("train") {
        None => g.check(false, "trace files written"),
        Some((summary_path, events_path)) => {
            println!("  trace written to {}", summary_path.display());
            let summary = std::fs::read_to_string(&summary_path).unwrap_or_default();
            g.check(
                eos_trace::validate(&summary).is_ok(),
                "TRACE_train.json is valid JSON",
            );
            g.check(
                summary.contains("\"eos.phase1\"")
                    && summary.contains("\"eos.phase2\"")
                    && summary.contains("\"eos.phase3\""),
                "summary names all three phases",
            );
            let events = std::fs::read_to_string(&events_path).unwrap_or_default();
            g.check(!events.is_empty(), "event log is non-empty");
            g.check(
                events.lines().all(|line| eos_trace::validate(line).is_ok()),
                "every TRACE_train.jsonl line is valid JSON",
            );
        }
    }

    par::set_num_threads(ambient);
    if g.failures > 0 {
        eprintln!("FAIL: {} trace invariant(s) violated", g.failures);
        std::process::exit(1);
    }
    println!("trace gate passed");
}
