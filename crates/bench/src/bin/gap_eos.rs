//! Gap-aware EOS extension binary — see [`eos_bench::tables::gap_eos`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::gap_eos::run(&eng, &args);
    eng.finish("gap_eos");
    if let Err(e) = result {
        eos_bench::exp::report_failure("gap_eos", &e);
        std::process::exit(1);
    }
}
