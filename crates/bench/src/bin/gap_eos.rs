//! Future-work extension experiment: gap-aware EOS (budget allocation
//! proportional to each class's measured generalization gap) versus plain
//! EOS and SMOTE across the dataset analogues (CE loss).
//!
//! This operationalises the paper's §VII future-work direction: "we
//! envision creating complementary measures will lead to a better
//! understanding ... the generalization gap can lead to effective
//! over-sampling".

use eos_bench::report::paper_fmt;
use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{Eos, GapAwareEos, ThreePhase};
use eos_nn::LossKind;
use eos_resample::Smote;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&["Dataset", "Method", "BAC", "GM", "FM"]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ name_hash("gap_eos"));
        eprintln!("[gap_eos] {dataset} backbone ...");
        let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
        let base = tp.baseline_eval(&test);
        let push = |m: &str, bac: f64, gm: f64, f1: f64, t: &mut MarkdownTable| {
            t.row(vec![
                dataset.to_string(),
                m.into(),
                paper_fmt(bac),
                paper_fmt(gm),
                paper_fmt(f1),
            ]);
        };
        push("Baseline", base.bac, base.gm, base.f1, &mut table);
        let r = tp.finetune_and_eval(&Smote::new(5), &test, &cfg, &mut rng);
        push("SMOTE", r.bac, r.gm, r.f1, &mut table);
        let r = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
        push("EOS", r.bac, r.gm, r.f1, &mut table);
        let r = tp.finetune_and_eval(&GapAwareEos::new(10), &test, &cfg, &mut rng);
        push("GapEOS", r.bac, r.gm, r.f1, &mut table);
    }
    println!(
        "\nExtension — gap-aware EOS (future work, §VII) (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "gap_eos");
}
