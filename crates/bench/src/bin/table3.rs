//! Table III — GAN-based over-sampling (GAMO, BAGAN, CGAN) vs EOS.
//!
//! GAN samplers act as pre-processing in *embedding space* for a fair
//! apples-to-apples comparison of sample placement (the paper's GANs
//! generate images; placement quality, not pixel fidelity, is what the
//! table measures). The binary also reports per-method oversampling
//! wall-clock, exposing CGAN's per-class model cost. Paper shape:
//! GAMO/BAGAN clearly below EOS; CGAN competitive but far more expensive,
//! especially on the many-class dataset.

use eos_bench::report::paper_fmt;
use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{Eos, ThreePhase};
use eos_gan::{BaganLite, CGan, DeepSmote, GamoLite};
use eos_nn::LossKind;
use eos_resample::Oversampler;
use eos_tensor::Rng64;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&[
        "Dataset",
        "Algo",
        "Method",
        "BAC",
        "GM",
        "FM",
        "Oversample s",
    ]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        for loss in LossKind::ALL {
            let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ loss as u64);
            eprintln!("[table3] {dataset} / {} ...", loss.name());
            let mut tp = ThreePhase::train(&train, loss, &cfg, &mut rng);
            let methods: Vec<Box<dyn Oversampler>> = vec![
                Box::new(GamoLite::new()),
                Box::new(BaganLite::new()),
                // DeepSMOTE (the authors' prior work, ref [48]) added as
                // an extension column beyond the paper's table.
                Box::new(DeepSmote::new()),
                Box::new(CGan::new()),
                Box::new(Eos::new(10)),
            ];
            for sampler in methods {
                // Time the oversampling itself (the model-induction cost).
                let t0 = Instant::now();
                let _ =
                    sampler.oversample(&tp.train_fe, &tp.train_y, tp.num_classes, &mut rng.fork());
                let os_seconds = t0.elapsed().as_secs_f64();
                let r = tp.finetune_and_eval(sampler.as_ref(), &test, &cfg, &mut rng);
                table.row(vec![
                    dataset.to_string(),
                    loss.name().into(),
                    sampler.name().into(),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                    format!("{os_seconds:.3}"),
                ]);
            }
        }
    }
    println!(
        "\nTable III reproduction — GAN-based oversampling vs EOS (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table3");
}
