//! Table III binary — see [`eos_bench::tables::table3`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::table3::run(&eng, &args);
    eng.finish("table3");
}
