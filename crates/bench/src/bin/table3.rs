//! Table III binary — see [`eos_bench::tables::table3`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::table3::run(&mut eng, &args);
    eng.finish("table3");
}
