//! Table III binary — see [`eos_bench::tables::table3`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::table3::run(&eng, &args);
    eng.finish("table3");
    if let Err(e) = result {
        eos_bench::exp::report_failure("table3", &e);
        std::process::exit(1);
    }
}
