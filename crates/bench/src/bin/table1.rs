//! Table I — Pre-processing (pixel-space) vs feature-embedding-space
//! over-sampling, cross-entropy loss.
//!
//! "Pre-" rows oversample raw pixels and train the full CNN on the
//! enlarged set; "Post-" rows use the three-phase framework with the same
//! oversampler applied to feature embeddings. Paper shape: the Post-
//! variant wins in most dataset × method cells (7 of 9); Remix appears
//! only as pre-processing (balancing twice would be double-counting).

use eos_bench::report::paper_fmt;
use eos_bench::{name_hash, prepared_dataset, samplers_for_table2, write_csv, Args, MarkdownTable};
use eos_core::{preprocess_and_train, ThreePhase};
use eos_nn::LossKind;
use eos_resample::Remix;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&["Dataset", "Descr", "BAC", "GM", "FM"]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        // Pre-processing arm: one full training run per oversampler.
        let mut pre: Vec<Box<dyn eos_resample::Oversampler>> = samplers_for_table2();
        pre.push(Box::new(Remix::new()));
        for sampler in &pre {
            let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ name_hash(sampler.name()));
            eprintln!("[table1] {dataset} / Pre-{} ...", sampler.name());
            let r = preprocess_and_train(
                &train,
                &test,
                LossKind::Ce,
                Some(sampler.as_ref()),
                &cfg,
                &mut rng,
            );
            table.row(vec![
                dataset.to_string(),
                format!("Pre-{}", sampler.name()),
                paper_fmt(r.bac),
                paper_fmt(r.gm),
                paper_fmt(r.f1),
            ]);
        }
        // Post arm: one backbone, one head fine-tune per oversampler.
        let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ name_hash("post"));
        eprintln!("[table1] {dataset} / Post backbone ...");
        let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
        for sampler in samplers_for_table2() {
            let r = tp.finetune_and_eval(sampler.as_ref(), &test, &cfg, &mut rng);
            table.row(vec![
                dataset.to_string(),
                format!("Post-{}", sampler.name()),
                paper_fmt(r.bac),
                paper_fmt(r.gm),
                paper_fmt(r.f1),
            ]);
        }
    }
    println!(
        "\nTable I reproduction — pixel vs embedding-space oversampling (CE, scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table1");
}
