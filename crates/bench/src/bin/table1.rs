//! Table I binary — see [`eos_bench::tables::table1`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::table1::run(&eng, &args);
    eng.finish("table1");
    if let Err(e) = result {
        eos_bench::exp::report_failure("table1", &e);
        std::process::exit(1);
    }
}
