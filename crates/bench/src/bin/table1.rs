//! Table I binary — see [`eos_bench::tables::table1`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::table1::run(&eng, &args);
    eng.finish("table1");
}
