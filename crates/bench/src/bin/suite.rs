//! The full paper reproduction in one command: every table, every
//! figure, the ablations and the run-time study.
//!
//! The suite first collects every table's backbone plan, dedupes the
//! shared trainings and prewarms the artifact cache (e.g. the per-dataset
//! × per-loss backbones of Tables II/III and Figures 3/5 are each trained
//! once, not four times), then runs the tables in paper order. On a rerun
//! every backbone comes out of the cache and only the cheap head
//! fine-tunes execute; outputs are byte-identical either way — including
//! under `--jobs N`, where independent trainings and table groups run
//! concurrently on the job scheduler.
//!
//! ```text
//! cargo run --release --bin suite -- --scale small --seed 42 --jobs 4
//! ```
//!
//! Special modes:
//!
//! - `--bench` runs the whole deterministic pipeline twice in-process —
//!   serial, then at `--jobs` — each pass against its own cold throwaway
//!   cache, compares every produced CSV byte-for-byte, and writes the
//!   wall-clock split to `results/BENCH_suite.json`.
//! - `--cache-gc [--cache-cap BYTES]` sweeps `$EOS_CACHE_DIR` (orphaned
//!   temp files, stale `.lock` files, corrupt entries, oldest entries
//!   over the cap), prints what was kept and reclaimed, and exits.

use eos_bench::exp::report_failure;
use eos_bench::{
    format_duration, tables, Args, ArtifactCache, BackbonePlan, Engine, EngineError, JsonRecord,
    MarkdownTable,
};
use std::time::Instant;

/// Every CSV the deterministic pipeline writes (runtime's timing CSVs are
/// excluded — that table is skipped under `--bench`).
const CSV_NAMES: [&str; 16] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "fig3",
    "fig4",
    "fig5",
    "fig6_summary",
    "fig6_coords",
    "fig7",
    "gap_eos",
    "pixel_eos",
    "ablation_direction",
    "ablation_gap_definition",
    "ablation_decoupling",
];

fn collect_plans(args: &Args) -> Vec<BackbonePlan> {
    let mut plans: Vec<BackbonePlan> = Vec::new();
    for plan in [
        tables::table1::plan,
        tables::table2::plan,
        tables::table3::plan,
        tables::table4::plan,
        tables::table5::plan,
        tables::fig3::plan,
        tables::fig4::plan,
        tables::fig5::plan,
        tables::fig6::plan,
        tables::fig7::plan,
        tables::gap_eos::plan,
        tables::pixel_eos::plan,
        tables::ablations::plan,
    ] {
        plans.extend(plan(args));
    }
    plans
}

/// One table module's `run` entry point.
type TableRun = fn(&Engine, &Args) -> Result<(), EngineError>;

/// Prewarms and runs every table in paper order. A failed table is
/// isolated: its surviving cells are journaled, its error is collected,
/// and the remaining tables still run. Returns the (prewarm, tables)
/// wall-clock split in seconds plus the per-table failures.
fn run_suite(eng: &Engine, args: &Args) -> (f64, f64, Vec<(&'static str, EngineError)>) {
    let plans = collect_plans(args);
    eprintln!(
        "[suite] prewarming {} planned backbones (deduped through the cache, {} job{}) ...",
        plans.len(),
        eng.jobs,
        if eng.jobs == 1 { "" } else { "s" },
    );
    let t0 = Instant::now();
    eng.prewarm(&plans);
    let prewarm = t0.elapsed().as_secs_f64();
    eprintln!("[suite] backbones ready; producing tables and figures ...");
    let t1 = Instant::now();
    let mut failures: Vec<(&'static str, EngineError)> = Vec::new();
    let runs: [(&'static str, TableRun); 13] = [
        ("table1", tables::table1::run),
        ("table2", tables::table2::run),
        ("table3", tables::table3::run),
        ("table4", tables::table4::run),
        ("table5", tables::table5::run),
        ("fig3", tables::fig3::run),
        ("fig4", tables::fig4::run),
        ("fig5", tables::fig5::run),
        ("fig6", tables::fig6::run),
        ("fig7", tables::fig7::run),
        ("gap_eos", tables::gap_eos::run),
        ("pixel_eos", tables::pixel_eos::run),
        ("ablations", tables::ablations::run),
    ];
    for (name, run) in runs {
        if let Err(e) = run(eng, args) {
            eprintln!("[suite] {name} FAILED; continuing with the remaining tables");
            failures.push((name, e));
        }
    }
    // Last: the run-time study times fresh trainings by design, and its
    // stdout carries wall-clock numbers — skippable so byte-identity
    // comparisons across job counts stay meaningful.
    if !args.skip_runtime {
        tables::runtime::run(args);
    }
    (prewarm, t1.elapsed().as_secs_f64(), failures)
}

/// `--cache-gc`: sweep the cache directory and report, without running
/// any experiment.
fn run_cache_gc(args: &Args) {
    let cache = ArtifactCache::at_default();
    println!("cache gc: {}", cache.dir().display());
    let report = match cache.gc(args.cache_cap) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: cache gc failed: {e}");
            std::process::exit(1);
        }
    };
    if !report.removed.is_empty() {
        let mut removed = MarkdownTable::new(&["Removed", "Bytes", "Age", "Reason"]);
        for (entry, why) in &report.removed {
            removed.row(vec![
                entry.name.clone(),
                entry.bytes.to_string(),
                format_duration(entry.age),
                (*why).into(),
            ]);
        }
        println!("\n{}", removed.render());
    }
    if !report.kept.is_empty() {
        let mut kept = MarkdownTable::new(&["Kept", "Bytes", "Age"]);
        for entry in &report.kept {
            kept.row(vec![
                entry.name.clone(),
                entry.bytes.to_string(),
                format_duration(entry.age),
            ]);
        }
        println!("\n{}", kept.render());
    }
    println!(
        "kept {} entries ({} bytes), removed {} files, reclaimed {} bytes",
        report.kept.len(),
        report.kept_bytes(),
        report.removed.len(),
        report.reclaimed_bytes,
    );
}

/// `--bench`: the deterministic pipeline serially and at `--jobs`, each
/// pass on a cold private cache; byte-compares the CSVs and records the
/// wall-clock split in `results/BENCH_suite.json`.
fn run_bench(args: &Args) {
    let mut args = args.clone();
    args.skip_runtime = true;
    let trained = |snap: &eos_trace::Snapshot| snap.counter("exp.backbone.trained");

    let pass = |label: &str, jobs: usize| {
        let dir =
            std::env::temp_dir().join(format!("eos_suite_bench_{}_{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let eng = Engine::with_cache(args.scale, args.seed, Some(ArtifactCache::at(&dir)))
            .with_jobs(jobs);
        eprintln!("[suite] bench pass '{label}' (jobs {jobs}, cold cache) ...");
        let before = trained(&eos_trace::snapshot());
        let t0 = Instant::now();
        let (prewarm, tables_s, failures) = run_suite(&eng, &args);
        if !failures.is_empty() {
            for (name, e) in &failures {
                report_failure(name, e);
            }
            eprintln!("[suite] bench pass '{label}' had table failures; aborting");
            std::process::exit(1);
        }
        let total = t0.elapsed().as_secs_f64();
        let trained_now = trained(&eos_trace::snapshot()) - before;
        let _ = std::fs::remove_dir_all(&dir);
        let csvs: Vec<(String, Option<Vec<u8>>)> = CSV_NAMES
            .iter()
            .map(|name| {
                let path = std::path::Path::new("results").join(format!("{name}.csv"));
                (name.to_string(), std::fs::read(path).ok())
            })
            .collect();
        eprintln!(
            "[suite] bench pass '{label}': prewarm {prewarm:.2}s, tables {tables_s:.2}s, \
             total {total:.2}s, {trained_now} backbones trained"
        );
        (prewarm, tables_s, total, trained_now, csvs)
    };

    let (s_prewarm, s_tables, s_total, s_trained, s_csvs) = pass("serial", 1);
    let (p_prewarm, p_tables, p_total, p_trained, p_csvs) = pass("parallel", args.jobs);

    let mut identical = true;
    for ((name, serial), (_, parallel)) in s_csvs.iter().zip(&p_csvs) {
        match (serial, parallel) {
            (Some(a), Some(b)) if a == b => {}
            (None, None) => eprintln!("[suite] bench: {name}.csv missing in both passes"),
            _ => {
                identical = false;
                eprintln!("[suite] bench: MISMATCH in {name}.csv between serial and parallel");
            }
        }
    }

    let speedup = if p_total > 0.0 {
        s_total / p_total
    } else {
        0.0
    };
    let mut rec = JsonRecord::new();
    rec.str("bench", "suite")
        .str("scale", &format!("{:?}", args.scale))
        .int("seed", args.seed)
        .int("jobs", args.jobs as u64)
        .int("threads", eos_tensor::par::num_threads() as u64)
        .num("serial_prewarm_s", s_prewarm)
        .num("serial_tables_s", s_tables)
        .num("serial_total_s", s_total)
        .int("serial_backbones_trained", s_trained)
        .num("parallel_prewarm_s", p_prewarm)
        .num("parallel_tables_s", p_tables)
        .num("parallel_total_s", p_total)
        .int("parallel_backbones_trained", p_trained)
        .num("speedup", speedup)
        .bool("csv_identical", identical)
        .int("csv_files", CSV_NAMES.len() as u64);
    rec.write("BENCH_suite");
    println!(
        "suite bench — serial {s_total:.2}s vs {} jobs {p_total:.2}s: {speedup:.2}x speedup, \
         CSVs {}",
        args.jobs,
        if identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
    );
    if !identical {
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::parse();
    if args.cache_gc {
        run_cache_gc(&args);
        return;
    }
    if args.bench {
        run_bench(&args);
        return;
    }
    let eng = Engine::new(&args);
    let (prewarm, tables_s, failures) = run_suite(&eng, &args);
    eprintln!("[suite] wall clock: prewarm {prewarm:.2}s, tables {tables_s:.2}s");
    eng.finish("suite");
    if !failures.is_empty() {
        for (name, e) in &failures {
            report_failure(name, e);
        }
        eprintln!(
            "[suite] {} table(s) failed; completed cells are journaled — rerun to resume",
            failures.len()
        );
        std::process::exit(1);
    }
}
