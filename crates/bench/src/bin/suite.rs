//! The full paper reproduction in one command: every table, every
//! figure, the ablations and the run-time study.
//!
//! The suite first collects every table's backbone plan, dedupes the
//! shared trainings and prewarms the artifact cache (e.g. the per-dataset
//! × per-loss backbones of Tables II/III and Figures 3/5 are each trained
//! once, not four times), then runs the tables in paper order. On a rerun
//! every backbone comes out of the cache and only the cheap head
//! fine-tunes execute; outputs are byte-identical either way.
//!
//! ```text
//! cargo run --release --bin suite -- --scale small --seed 42
//! ```

use eos_bench::{tables, Args, BackbonePlan, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);

    let mut plans: Vec<BackbonePlan> = Vec::new();
    for plan in [
        tables::table1::plan,
        tables::table2::plan,
        tables::table3::plan,
        tables::table4::plan,
        tables::table5::plan,
        tables::fig3::plan,
        tables::fig4::plan,
        tables::fig5::plan,
        tables::fig6::plan,
        tables::fig7::plan,
        tables::gap_eos::plan,
        tables::pixel_eos::plan,
        tables::ablations::plan,
    ] {
        plans.extend(plan(&args));
    }
    eprintln!(
        "[suite] prewarming {} planned backbones (deduped through the cache) ...",
        plans.len()
    );
    eng.prewarm(&plans);
    eprintln!("[suite] backbones ready; producing tables and figures ...");

    tables::table1::run(&mut eng, &args);
    tables::table2::run(&mut eng, &args);
    tables::table3::run(&mut eng, &args);
    tables::table4::run(&mut eng, &args);
    tables::table5::run(&mut eng, &args);
    tables::fig3::run(&mut eng, &args);
    tables::fig4::run(&mut eng, &args);
    tables::fig5::run(&mut eng, &args);
    tables::fig6::run(&mut eng, &args);
    tables::fig7::run(&mut eng, &args);
    tables::gap_eos::run(&mut eng, &args);
    tables::pixel_eos::run(&mut eng, &args);
    tables::ablations::run(&mut eng, &args);
    // Last: the run-time study times fresh trainings by design.
    tables::runtime::run(&args);

    eng.finish("suite");
}
