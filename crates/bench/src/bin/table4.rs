//! Table IV — EOS nearest-neighbour size (K) sensitivity.
//!
//! K ∈ {10, 50, 100, 200, 300} with cross-entropy. Paper shape: BAC
//! improves with K and plateaus by K ≈ 200–300 (a larger enemy
//! neighbourhood gives a more diverse range expansion).

use eos_bench::report::paper_fmt;
use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{Eos, ThreePhase};
use eos_nn::LossKind;
use eos_tensor::Rng64;

const KS: [usize; 5] = [10, 50, 100, 200, 300];

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&["Dataset", "K", "BAC", "GM", "FM"]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ name_hash("table4"));
        eprintln!("[table4] {dataset} backbone ...");
        let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
        for k in KS {
            // K cannot exceed the number of other samples.
            let k_eff = k.min(train.len().saturating_sub(1)).max(1);
            let r = tp.finetune_and_eval(&Eos::new(k_eff), &test, &cfg, &mut rng);
            table.row(vec![
                dataset.to_string(),
                k.to_string(),
                paper_fmt(r.bac),
                paper_fmt(r.gm),
                paper_fmt(r.f1),
            ]);
        }
    }
    println!(
        "\nTable IV reproduction — EOS neighbourhood-size sweep (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table4");
}
