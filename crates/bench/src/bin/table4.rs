//! Table IV binary — see [`eos_bench::tables::table4`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::table4::run(&eng, &args);
    eng.finish("table4");
}
