//! Table IV binary — see [`eos_bench::tables::table4`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::table4::run(&eng, &args);
    eng.finish("table4");
    if let Err(e) = result {
        eos_bench::exp::report_failure("table4", &e);
        std::process::exit(1);
    }
}
