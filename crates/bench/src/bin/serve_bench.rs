//! Serving-engine benchmark: throughput and tail latency of the
//! micro-batcher across batch sizes and `workers × threads` splits.
//!
//! A warmed ResNet checkpoint is served through `eos_serve::Server` and
//! driven two ways:
//!
//! * **Closed loop** — a fixed pool of clients each submit-and-wait in a
//!   tight loop, so offered load tracks capacity. The headline numbers
//!   compare `max_batch = 1` (every request runs alone: the no-batching
//!   baseline) against `max_batch = 32` on the same 4-thread budget —
//!   the acceptance gate requires batching to at least **double**
//!   throughput — then sweep batch size × thread split.
//! * **Open loop** — requests arrive on a fixed pace regardless of
//!   completions (25% above measured batched capacity), so the bounded
//!   queue must shed load: rejected submits are counted rather than
//!   buffered, and completed-request latency shows the backpressure.
//!
//! Latency percentiles are nearest-rank over client-observed
//! submit-to-resolve times. Everything lands in
//! `results/BENCH_serve.json`; the trace registry (span tree,
//! `serve.*` counters, queue-depth / batch-size / latency histograms)
//! lands in `results/TRACE_serve.json` for the verify gate's JSON
//! validator. `--smoke` trims request counts for `scripts/verify.sh`.

use eos_bench::{percentile, JsonRecord};
use eos_nn::{save_weights_bytes, Architecture, ConvNet};
use eos_serve::{ServeConfig, ServeError, Server};
use eos_tensor::{normal, Rng64};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHAPE: (usize, usize, usize) = (3, 16, 16);
const IN_LEN: usize = 3 * 16 * 16;
const CLASSES: usize = 4;

fn arch() -> Architecture {
    Architecture::ResNet {
        blocks_per_stage: 1,
        width: 8,
    }
}

/// Train-mode warm-up then serialize: the served model reads non-trivial
/// batch-norm running statistics, like a real checkpoint would.
fn checkpoint() -> Arc<[u8]> {
    let mut rng = Rng64::new(42);
    let mut net = ConvNet::new(arch(), SHAPE, CLASSES, &mut rng);
    for _ in 0..2 {
        let x = normal(&[16, IN_LEN], 0.0, 1.0, &mut rng);
        let _ = net.forward(&x, true);
    }
    save_weights_bytes(&mut net).into()
}

fn start(blob: &Arc<[u8]>, max_batch: usize, workers: usize, threads: usize) -> Server {
    let blob = Arc::clone(blob);
    Server::start(
        ServeConfig {
            max_batch,
            max_wait: Duration::from_micros(200),
            queue_cap: 4096,
            workers,
            threads_per_worker: threads,
        },
        move |_| {
            let fresh = ConvNet::new(arch(), SHAPE, CLASSES, &mut Rng64::new(0));
            eos_serve::InferenceModel::from_eosw_bytes(Box::new(fresh), IN_LEN, &blob)
                .expect("checkpoint restores")
        },
    )
}

/// One load-generation run's results.
struct LoadResult {
    completed: usize,
    rejected: usize,
    elapsed: Duration,
    latencies: Vec<Duration>,
}

impl LoadResult {
    fn rps(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Closed loop: `clients` threads each run `per_client` submit-and-wait
/// iterations. Overload rejections back off and retry (a closed-loop
/// client's next request *is* its retry), so every request completes.
fn closed_loop(server: &Server, clients: usize, per_client: usize) -> LoadResult {
    let t0 = Instant::now();
    let latencies = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    // Input generation is not the system under test: build
                    // this client's request up front so the measured loop
                    // is submit → wait → resolve and nothing else.
                    let mut rng = Rng64::new(0xC11E27 + c as u64);
                    let x = normal(&[1, IN_LEN], 0.0, 1.0, &mut rng).data().to_vec();
                    let mut lat = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let begin = Instant::now();
                        let ticket = loop {
                            match server.submit(x.clone()) {
                                Ok(t) => break t,
                                Err(ServeError::Overloaded { .. }) => {
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                                Err(e) => panic!("closed-loop submit failed: {e}"),
                            }
                        };
                        ticket.wait().expect("closed-loop request failed");
                        lat.push(begin.elapsed());
                    }
                    lat
                })
            })
            .collect();
        let mut all = Vec::with_capacity(clients * per_client);
        for h in handles {
            all.extend(h.join().expect("client thread panicked"));
        }
        all
    });
    LoadResult {
        completed: latencies.len(),
        rejected: 0,
        elapsed: t0.elapsed(),
        latencies,
    }
}

/// Open loop: one pacer submits `total` requests at a fixed interval no
/// matter how the server keeps up; overloaded submits are shed and
/// counted. Collector threads redeem tickets as they resolve so waiting
/// never throttles the pacer.
fn open_loop(server: &Server, total: usize, rate_rps: f64) -> LoadResult {
    let interval = Duration::from_secs_f64(1.0 / rate_rps.max(1.0));
    let rejected = AtomicUsize::new(0);
    let t0 = Instant::now();
    let (tx, rx) = std::sync::mpsc::channel::<(Instant, eos_serve::Ticket)>();
    let rx = std::sync::Mutex::new(rx);
    let latencies = std::thread::scope(|s| {
        let collectors: Vec<_> = (0..4)
            .map(|_| {
                let rx = &rx;
                s.spawn(move || {
                    let mut lat = Vec::new();
                    loop {
                        let msg = rx.lock().unwrap().recv();
                        match msg {
                            Ok((begin, ticket)) => {
                                ticket.wait().expect("open-loop request failed");
                                lat.push(begin.elapsed());
                            }
                            Err(_) => return lat,
                        }
                    }
                })
            })
            .collect();
        let mut rng = Rng64::new(0x09E7);
        let x0 = normal(&[1, IN_LEN], 0.0, 1.0, &mut rng).data().to_vec();
        let start = Instant::now();
        for i in 0..total {
            let due = start + interval * i as u32;
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            match server.submit(x0.clone()) {
                Ok(t) => tx.send((Instant::now(), t)).expect("collector alive"),
                Err(ServeError::Overloaded { .. }) => {
                    rejected.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("open-loop submit failed: {e}"),
            }
        }
        drop(tx);
        let mut all = Vec::new();
        for c in collectors {
            all.extend(c.join().expect("collector thread panicked"));
        }
        all
    });
    LoadResult {
        completed: latencies.len(),
        rejected: rejected.load(Ordering::Relaxed),
        elapsed: t0.elapsed(),
        latencies,
    }
}

/// Runs one closed-loop config and records it under `key_`-prefixed
/// fields.
fn record_closed(rec: &mut JsonRecord, key: &str, label: &str, res: &LoadResult) -> f64 {
    let p50 = percentile(&res.latencies, 50.0);
    let p99 = percentile(&res.latencies, 99.0);
    println!(
        "{label:<44} {:>9.0} req/s  p50 {:>10}  p99 {:>10}",
        res.rps(),
        eos_bench::format_duration(p50),
        eos_bench::format_duration(p99),
    );
    rec.num(&format!("{key}_rps"), res.rps())
        .int(&format!("{key}_p50_ns"), p50.as_nanos() as u64)
        .int(&format!("{key}_p99_ns"), p99.as_nanos() as u64);
    res.rps()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (default_clients, per_client, open_total) =
        if smoke { (64, 6, 800) } else { (64, 40, 8000) };
    let clients: usize = std::env::var("EOS_SERVE_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_clients);
    eos_trace::set_enabled(true);
    let blob = checkpoint();

    let mut rec = JsonRecord::new();
    rec.str("bench", "serve")
        .str("arch", "resnet-1x8")
        .int("input_len", IN_LEN as u64)
        .int("classes", CLASSES as u64)
        .int("clients", clients as u64)
        .int("requests_per_client", per_client as u64);

    // Unrecorded warm-up: first-touch page faults, model deserialization
    // and allocator pool growth land here instead of inside the first
    // recorded configuration (run order must not bias the headline).
    let server = start(&blob, 32, 1, 4);
    let _ = closed_loop(&server, clients, per_client.min(6));
    server.shutdown();

    // --- Headline: no-batching baseline vs batch-32, same 4-thread
    // budget. This is the acceptance ratio. Machine throughput drifts
    // tens of percent over a run (frequency scaling, page-cache warmth),
    // so a single A-then-B measurement biases whichever config runs
    // closer to the peak; instead the two configs alternate for several
    // rounds and each reports its best round — both sides get an equal
    // shot at the machine's fastest state.
    const ROUNDS: usize = 3;
    let mut baseline: Option<LoadResult> = None;
    let mut batched: Option<LoadResult> = None;
    for _ in 0..ROUNDS {
        for (max_batch, slot) in [(1usize, &mut baseline), (32, &mut batched)] {
            let server = start(&blob, max_batch, 1, 4);
            let res = closed_loop(&server, clients, per_client);
            server.shutdown();
            if slot.as_ref().is_none_or(|best| res.rps() > best.rps()) {
                *slot = Some(res);
            }
        }
    }
    let (baseline, batched) = (baseline.unwrap(), batched.unwrap());
    let baseline_rps = record_closed(
        &mut rec,
        "baseline_b1_w1t4",
        "closed loop b=1 1w×4t",
        &baseline,
    );
    let batched_rps = record_closed(
        &mut rec,
        "batched_b32_w1t4",
        "closed loop b=32 1w×4t",
        &batched,
    );

    let speedup = batched_rps / baseline_rps.max(1e-9);
    println!("batching speedup at batch 32 on 4 threads: {speedup:.2}x");
    rec.num("batching_speedup_b32_t4", speedup);

    // --- Sweep: batch size × thread split at a fixed 4-thread footprint,
    // plus batch 32 on wider splits.
    for (batch, workers, threads) in [
        (8usize, 1usize, 4usize),
        (32, 1, 1),
        (32, 2, 2),
        (32, 4, 1),
        (8, 4, 1),
    ] {
        let server = start(&blob, batch, workers, threads);
        let res = closed_loop(&server, clients, per_client);
        server.shutdown();
        record_closed(
            &mut rec,
            &format!("b{batch}_w{workers}t{threads}"),
            &format!("closed loop b={batch} {workers}w×{threads}t"),
            &res,
        );
    }

    // --- Open loop at 125% of measured batched capacity: the bounded
    // queue must shed the overflow as typed rejections, not buffer it.
    let offered = batched_rps * 1.25;
    let server = start(&blob, 32, 1, 4);
    let open = open_loop(&server, open_total, offered);
    server.shutdown();
    let p99 = percentile(&open.latencies, 99.0);
    println!(
        "open loop @ {offered:.0} req/s offered: {:.0} req/s completed, {} shed, p99 {}",
        open.rps(),
        open.rejected,
        eos_bench::format_duration(p99),
    );
    rec.num("openloop_offered_rps", offered)
        .num("openloop_completed_rps", open.rps())
        .int("openloop_total", open_total as u64)
        .int("openloop_completed", open.completed as u64)
        .int("openloop_shed", open.rejected as u64)
        .int("openloop_p99_ns", p99.as_nanos() as u64);

    rec.write("BENCH_serve");
    if let Some((summary, events)) = eos_trace::write_trace("serve") {
        // Verify-gate contract: both artifacts are byte-valid JSON (RFC
        // 8259) — the summary one complete value, the event log one
        // value per line.
        let s = std::fs::read_to_string(&summary).expect("trace summary readable");
        if let Err(e) = eos_trace::validate(&s) {
            panic!("TRACE_serve.json is not valid JSON: {e}");
        }
        let ev = std::fs::read_to_string(&events).expect("trace events readable");
        for (i, line) in ev.lines().enumerate() {
            if let Err(e) = eos_trace::validate(line) {
                panic!("TRACE_serve.jsonl line {} is not valid JSON: {e}", i + 1);
            }
        }
        println!(
            "trace: {} and {} (JSON validated)",
            summary.display(),
            events.display()
        );
    }
    eos_trace::set_enabled(false);

    if speedup < 2.0 {
        eprintln!("FAIL: batching speedup {speedup:.2}x < 2.0x at batch 32 on 4 threads");
        std::process::exit(1);
    }
}
