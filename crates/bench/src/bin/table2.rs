//! Table II binary — see [`eos_bench::tables::table2`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::table2::run(&mut eng, &args);
    eng.finish("table2");
}
