//! Table II — Baseline algorithms & over-sampling accuracy.
//!
//! For every dataset analogue and every loss (CE, ASL, Focal, LDAM):
//! train the backbone once, then compare the end-to-end baseline against
//! head fine-tuning with SMOTE / Borderline-SMOTE / Balanced-SVM / EOS in
//! feature-embedding space. Paper shape: EOS wins most cells; the
//! backbone loss matters (LDAM embeddings are the strongest pairing).

use eos_bench::report::paper_fmt;
use eos_bench::runner::name_hash;
use eos_bench::{prepared_dataset, samplers_for_table2, write_csv, Args, MarkdownTable};
use eos_core::{Eos, EvalResult, ThreePhase};
use eos_nn::LossKind;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&["Dataset", "Algo", "Method", "BAC", "GM", "FM"]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        for loss in LossKind::ALL {
            let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ loss as u64);
            eprintln!("[table2] {dataset} / {} ...", loss.name());
            let mut tp = ThreePhase::train(&train, loss, &cfg, &mut rng);
            let mut push = |method: &str, r: &EvalResult| {
                table.row(vec![
                    dataset.to_string(),
                    loss.name().into(),
                    method.into(),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                ]);
            };
            let base = tp.baseline_eval(&test);
            push("Baseline", &base);
            for sampler in samplers_for_table2() {
                let r = tp.finetune_and_eval(sampler.as_ref(), &test, &cfg, &mut rng);
                push(sampler.name(), &r);
            }
            let r = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
            push("EOS", &r);
        }
    }
    println!(
        "\nTable II reproduction (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table2");
}
