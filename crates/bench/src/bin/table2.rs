//! Table II binary — see [`eos_bench::tables::table2`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::table2::run(&eng, &args);
    eng.finish("table2");
    if let Err(e) = result {
        eos_bench::exp::report_failure("table2", &e);
        std::process::exit(1);
    }
}
