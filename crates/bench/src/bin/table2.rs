//! Table II binary — see [`eos_bench::tables::table2`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::table2::run(&eng, &args);
    eng.finish("table2");
}
