//! GEMM micro-kernel benchmark: the packed register-blocked kernel in
//! `eos_tensor::matmul` against the seed scalar kernel it replaced, with a
//! bit-identity check and a machine-readable `results/BENCH_gemm.json`.
//!
//! `--smoke` trims the sample count so `scripts/verify.sh` can run this as
//! a cheap regression gate.

use eos_bench::{bench_stats, JsonRecord};
use eos_tensor::{normal, par, Rng64};

const BLOCK_K: usize = 64;

/// The pre-packing scalar GEMM (`i-k-j` order with a `BLOCK_K` cache
/// block), kept verbatim as the speedup baseline and the bit-identity
/// reference for the packed kernel.
fn seed_gemm(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    let nrows = out.len() / n;
    for kb in (0..k).step_by(BLOCK_K) {
        let kend = (kb + BLOCK_K).min(k);
        for r in 0..nrows {
            let arow = &a[r * k..(r + 1) * k];
            let crow = &mut out[r * n..(r + 1) * n];
            for p in kb..kend {
                let av = arow[p];
                if av == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = if smoke { 3 } else { 30 };
    let (m, k, n) = (256usize, 256usize, 256usize);
    let flops = 2 * (m * k * n) as u64;

    let mut rng = Rng64::new(7);
    let a = normal(&[m, k], 0.0, 1.0, &mut rng);
    let b = normal(&[k, n], 0.0, 1.0, &mut rng);

    // The acceptance quantity is the *single-thread* kernel speedup, so
    // both baselines run with the pool switched off.
    let ambient = par::num_threads();
    par::set_num_threads(1);

    let mut seed_out = vec![0.0f32; m * n];
    let seed = bench_stats(&format!("seed scalar gemm {m}x{k}x{n}"), samples, || {
        seed_out.fill(0.0);
        seed_gemm(a.data(), b.data(), &mut seed_out, k, n);
    });
    let packed = bench_stats(
        &format!("packed gemm {m}x{k}x{n} (1 thread)"),
        samples,
        || a.matmul(&b),
    );

    let packed_out = a.matmul(&b);
    let identical = packed_out
        .data()
        .iter()
        .zip(&seed_out)
        .all(|(x, y)| x.to_bits() == y.to_bits());

    par::set_num_threads(ambient);
    let packed_mt = bench_stats(
        &format!("packed gemm {m}x{k}x{n} ({ambient} threads)"),
        samples,
        || a.matmul(&b),
    );

    let speedup = seed.min.as_nanos() as f64 / packed.min.as_nanos().max(1) as f64;
    println!(
        "single-thread speedup {speedup:.2}x  ({:.2} -> {:.2} GFLOP/s)  bit-identical: {identical}",
        seed.gflops(flops),
        packed.gflops(flops),
    );
    if !identical {
        eprintln!("FAIL: packed kernel output differs from the seed kernel");
        std::process::exit(1);
    }
    if speedup < 2.0 && !smoke {
        eprintln!("warning: single-thread speedup below the 2x target");
    }

    let mut rec = JsonRecord::new();
    rec.str("bench", "gemm")
        .int("m", m as u64)
        .int("k", k as u64)
        .int("n", n as u64)
        .int("samples", samples as u64)
        .int("seed_mean_ns", seed.mean.as_nanos() as u64)
        .int("seed_min_ns", seed.min.as_nanos() as u64)
        .num("seed_gflops", seed.gflops(flops))
        .int("packed_mean_ns", packed.mean.as_nanos() as u64)
        .int("packed_min_ns", packed.min.as_nanos() as u64)
        .num("packed_gflops", packed.gflops(flops))
        .num("single_thread_speedup", speedup)
        .int("threads_mt", ambient as u64)
        .int("packed_mt_min_ns", packed_mt.min.as_nanos() as u64)
        .num("packed_mt_gflops", packed_mt.gflops(flops))
        .bool("bit_identical", identical);
    rec.write("BENCH_gemm");
}
