//! §V-E3 pixel-vs-embedding binary — see [`eos_bench::tables::pixel_eos`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::pixel_eos::run(&eng, &args);
    eng.finish("pixel_eos");
    if let Err(e) = result {
        eos_bench::exp::report_failure("pixel_eos", &e);
        std::process::exit(1);
    }
}
