//! §V-E3 — EOS in pixel space vs feature-embedding space (cifar10
//! analogue, CE loss). Includes the interpolation-direction ablation.
//!
//! Paper shape: pixel-space EOS trails embedding-space EOS by a wide
//! margin (~7 BAC points in the paper) because pixel-space nearest
//! adversaries are far less discriminative than embedding-space ones.
//! The direction ablation contrasts the paper's prose (toward-enemy
//! convex combination) with the literal Algorithm 2 formula
//! (away-from-enemy extrapolation).

use eos_bench::report::paper_fmt;
use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{preprocess_and_train, Direction, Eos, ThreePhase};
use eos_nn::LossKind;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let (train, test) = prepared_dataset("cifar10", args.scale, args.seed);
    let mut table = MarkdownTable::new(&["Variant", "BAC", "GM", "FM"]);
    let mut rng = Rng64::new(args.seed ^ name_hash("pixel_eos"));

    eprintln!("[pixel_eos] EOS as pixel-space pre-processing ...");
    let pixel = preprocess_and_train(
        &train,
        &test,
        LossKind::Ce,
        Some(&Eos::new(10)),
        &cfg,
        &mut rng,
    );
    table.row(vec![
        "EOS in pixel space (pre-processing)".into(),
        paper_fmt(pixel.bac),
        paper_fmt(pixel.gm),
        paper_fmt(pixel.f1),
    ]);

    eprintln!("[pixel_eos] EOS in embedding space ...");
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let fe = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    table.row(vec![
        "EOS in embedding space (three-phase)".into(),
        paper_fmt(fe.bac),
        paper_fmt(fe.gm),
        paper_fmt(fe.f1),
    ]);

    eprintln!("[pixel_eos] direction ablation ...");
    let away = tp.finetune_and_eval(
        &Eos::with_direction(10, Direction::AwayFromEnemy),
        &test,
        &cfg,
        &mut rng,
    );
    table.row(vec![
        "EOS embedding, away-from-enemy (literal Alg. 2)".into(),
        paper_fmt(away.bac),
        paper_fmt(away.gm),
        paper_fmt(away.f1),
    ]);

    println!(
        "\n§V-E3 reproduction — EOS pixel vs embedding space (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    println!(
        "embedding-space advantage: {:+.1} BAC points (paper: ~+7)",
        (fe.bac - pixel.bac) * 100.0
    );
    write_csv(&table, "pixel_eos");
}
