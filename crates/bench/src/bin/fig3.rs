//! Figure 3 binary — see [`eos_bench::tables::fig3`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::fig3::run(&eng, &args);
    eng.finish("fig3");
    if let Err(e) = result {
        eos_bench::exp::report_failure("fig3", &e);
        std::process::exit(1);
    }
}
