//! Figure 3 binary — see [`eos_bench::tables::fig3`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::fig3::run(&mut eng, &args);
    eng.finish("fig3");
}
