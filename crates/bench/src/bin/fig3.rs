//! Figure 3 — Per-class generalization gap, four losses × datasets,
//! baseline vs embedding-space oversamplers vs EOS.
//!
//! Paper shape: the gap rises with class imbalance (class index); the
//! interpolative oversamplers' curves overlap the baseline (they cannot
//! change embedding ranges); only EOS flattens the minority tail. The
//! binary also prints the mean-based feature-deviation alternative for
//! the gap-definition ablation.

use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{feature_deviation, generalization_gap, Eos, ThreePhase};
use eos_nn::LossKind;
use eos_resample::{balance_with, Oversampler, Smote};
use eos_tensor::{Rng64, Tensor};

/// Gap per class after augmenting the train embeddings with a sampler
/// (`None` = baseline).
fn gap_with(
    tp: &ThreePhase,
    test_fe: &Tensor,
    test_y: &[usize],
    sampler: Option<&dyn Oversampler>,
    rng: &mut Rng64,
) -> Vec<f64> {
    let (fe, y) = match sampler {
        Some(s) => balance_with(s, &tp.train_fe, &tp.train_y, tp.num_classes, rng),
        None => (tp.train_fe.clone(), tp.train_y.clone()),
    };
    generalization_gap(&fe, &y, test_fe, test_y, tp.num_classes).per_class
}

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let mut table = MarkdownTable::new(&[
        "Dataset",
        "Algo",
        "Class",
        "TrainCount",
        "Baseline",
        "SMOTE",
        "EOS",
        "FeatDev",
    ]);
    for dataset in &args.datasets {
        let (train, test) = prepared_dataset(dataset, args.scale, args.seed);
        let counts = train.class_counts();
        for loss in LossKind::ALL {
            let mut rng = Rng64::new(args.seed ^ name_hash(dataset) ^ loss as u64);
            eprintln!("[fig3] {dataset} / {} ...", loss.name());
            let mut tp = ThreePhase::train(&train, loss, &cfg, &mut rng);
            let test_fe = tp.embed(&test);
            let base = gap_with(&tp, &test_fe, &test.y, None, &mut rng);
            let smote = gap_with(&tp, &test_fe, &test.y, Some(&Smote::new(5)), &mut rng);
            let eos = gap_with(&tp, &test_fe, &test.y, Some(&Eos::new(10)), &mut rng);
            let dev =
                feature_deviation(&tp.train_fe, &tp.train_y, &test_fe, &test.y, tp.num_classes)
                    .per_class;
            for c in 0..tp.num_classes {
                table.row(vec![
                    dataset.to_string(),
                    loss.name().into(),
                    c.to_string(),
                    counts[c].to_string(),
                    format!("{:.3}", base[c]),
                    format!("{:.3}", smote[c]),
                    format!("{:.3}", eos[c]),
                    format!("{:.3}", dev[c]),
                ]);
            }
            // Summary line: does EOS flatten the minority tail?
            let minority = tp.num_classes / 2..tp.num_classes;
            let tail = |v: &[f64]| -> f64 {
                minority.clone().map(|c| v[c]).sum::<f64>() / minority.len() as f64
            };
            eprintln!(
                "  minority-tail gap: baseline {:.3}, SMOTE {:.3}, EOS {:.3}",
                tail(&base),
                tail(&smote),
                tail(&eos)
            );
        }
    }
    println!(
        "\nFigure 3 reproduction — per-class generalization gap (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    write_csv(&table, "fig3");
}
