//! §V-E2 run-time binary — see [`eos_bench::tables::runtime`]. Timing is
//! the subject here, so this binary never touches the artifact cache.

use eos_bench::{tables, Args};

fn main() {
    let args = Args::parse();
    tables::runtime::run(&args);
}
