//! §V-E2 — Model run time: EOS three-phase pipeline vs pre-processing
//! oversampling, cifar10 analogue.
//!
//! Paper numbers: pre-processing averages 126.9 min vs EOS 43.9 min
//! (≈2.9×) because pre-processing trains the full CNN on the *enlarged*
//! pixel set while EOS trains on the imbalanced set and then retrains a
//! ~1K-parameter head on low-dimensional embeddings for 10 epochs. The
//! reproduction measures the same two pipelines at reproduction scale —
//! the ratio, not the minutes, is the reproduced quantity.

use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{preprocess_and_train, Eos, ThreePhase};
use eos_nn::LossKind;
use eos_tensor::Rng64;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let (train, test) = prepared_dataset("cifar10", args.scale, args.seed);
    let mut table = MarkdownTable::new(&["Pipeline", "BAC", "Seconds"]);

    // Pre-processing arm: average over the three classical oversamplers,
    // as the paper does.
    let mut pre_total = 0.0f64;
    let pre_samplers = eos_bench::samplers_for_table2();
    let mut rng = Rng64::new(args.seed ^ name_hash("runtime"));
    for sampler in &pre_samplers {
        eprintln!("[runtime] pre-processing with {} ...", sampler.name());
        let r = preprocess_and_train(
            &train,
            &test,
            LossKind::Ce,
            Some(sampler.as_ref()),
            &cfg,
            &mut rng,
        );
        table.row(vec![
            format!("Pre-{}", sampler.name()),
            format!("{:.4}", r.bac),
            format!("{:.2}", r.seconds),
        ]);
        pre_total += r.seconds;
    }
    let pre_avg = pre_total / pre_samplers.len() as f64;

    // EOS arm: backbone on the imbalanced set + head fine-tune.
    eprintln!("[runtime] EOS three-phase ...");
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let r = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    table.row(vec![
        "EOS (three-phase)".into(),
        format!("{:.4}", r.bac),
        format!("{:.2}", r.seconds),
    ]);

    println!(
        "\n§V-E2 reproduction — pipeline run time (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    println!(
        "pre-processing avg {:.2}s vs EOS {:.2}s -> ratio {:.2}x (paper: 126.9 vs 43.9 min = 2.9x)",
        pre_avg,
        r.seconds,
        pre_avg / r.seconds.max(1e-9)
    );
    // The parameter-count side of the §V-E2 argument.
    let head_params =
        tp.net.head.weight().len() + tp.net.head.bias().map_or(0, |b| b.len());
    println!(
        "backbone params: {}, retrained head params: {}",
        tp.net.param_count(),
        head_params
    );
    write_csv(&table, "runtime");
}
