//! Ablations binary — see [`eos_bench::tables::ablations`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::ablations::run(&eng, &args);
    eng.finish("ablations");
}
