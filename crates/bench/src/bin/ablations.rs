//! Ablations binary — see [`eos_bench::tables::ablations`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::ablations::run(&eng, &args);
    eng.finish("ablations");
    if let Err(e) = result {
        eos_bench::exp::report_failure("ablations", &e);
        std::process::exit(1);
    }
}
