//! Ablations binary — see [`eos_bench::tables::ablations`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::ablations::run(&mut eng, &args);
    eng.finish("ablations");
}
