//! Steady-state training-step benchmark and heap-allocation audit.
//!
//! A debug counting allocator wraps `System` and counts every allocation
//! (alloc, alloc_zeroed, realloc). After warm-up steps fill the scratch
//! pool, the per-worker workspaces and the optimiser state, a steady-state
//! training step must perform **zero** heap allocations — the audit runs
//! single-threaded so the count is deterministic, and the binary exits
//! non-zero if any allocation sneaks back into the hot path. A second
//! audit repeats the check with two concurrent jobs (each under a scoped
//! one-thread budget, mirroring the suite scheduler's split) to prove the
//! process-global scratch pool and the per-state workspaces stay
//! allocation-free under outer parallelism once the pool is stocked to
//! the concurrent peak working set. Timing is
//! then measured at the ambient thread budget — with tracing disabled
//! (the configuration the acceptance gate compares against the pre-trace
//! baseline) and again with tracing enabled, reporting the overhead —
//! and written to `results/BENCH_train_step.json`.
//!
//! `--smoke` trims the sample counts for `scripts/verify.sh`.

use eos_bench::{bench_stats, JsonRecord};
use eos_nn::{Architecture, ConvNet, CrossEntropyLoss, Loss, Sgd};
use eos_tensor::{normal, par, Rng64, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation on every thread; frees are not counted (the
/// audit is about allocation pressure, not leaks).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One mini-batch step exactly as the trainer loop runs it.
struct StepState {
    net: ConvNet,
    loss: CrossEntropyLoss,
    opt: Sgd,
    x: Tensor,
    chunk: Vec<usize>,
    by: Vec<usize>,
    preds: Vec<usize>,
}

impl StepState {
    fn step(&mut self) -> f32 {
        let bx = self.x.select_rows(&self.chunk);
        self.net.zero_grad();
        let logits = self.net.forward(&bx, true);
        let (l, dlogits) = self.loss.loss_and_grad(&logits, &self.by);
        let _ = self.net.backward(&dlogits);
        self.opt.step_visit(&mut self.net);
        logits.argmax_rows_into(&mut self.preds);
        l
    }

    /// [`StepState::step`] with a per-phase allocation count, printed so a
    /// failing audit points at the offending phase.
    fn step_traced(&mut self) -> f32 {
        let read = || {
            (
                ALLOCATIONS.load(Ordering::SeqCst),
                eos_tensor::scratch::stats().1 as u64,
            )
        };
        let t0 = read();
        let bx = self.x.select_rows(&self.chunk);
        let t1 = read();
        self.net.zero_grad();
        let t2 = read();
        let logits = self.net.forward(&bx, true);
        let t3 = read();
        let (l, dlogits) = self.loss.loss_and_grad(&logits, &self.by);
        let t4 = read();
        let _ = self.net.backward(&dlogits);
        let t5 = read();
        self.opt.step_visit(&mut self.net);
        let t6 = read();
        logits.argmax_rows_into(&mut self.preds);
        let t7 = read();
        println!(
            "  phase allocations: select {} zero_grad {} forward {} loss {} backward {} opt {} argmax {}",
            t1.0 - t0.0, t2.0 - t1.0, t3.0 - t2.0, t4.0 - t3.0, t5.0 - t4.0, t6.0 - t5.0, t7.0 - t6.0
        );
        println!(
            "  scratch misses:    select {} zero_grad {} forward {} loss {} backward {} opt {} argmax {}",
            t1.1 - t0.1, t2.1 - t1.1, t3.1 - t2.1, t4.1 - t3.1, t5.1 - t4.1, t6.1 - t5.1, t7.1 - t6.1
        );
        l
    }
}

/// A fresh step state on its own RNG stream (each concurrent job gets
/// its own model, data and optimiser — jobs share nothing but the
/// process-wide allocator being audited).
fn make_state(seed: u64) -> StepState {
    let (batch, classes) = (16usize, 4usize);
    let shape = (3usize, 16usize, 16usize);
    let arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 8,
    };
    let mut rng = Rng64::new(seed);
    let x = normal(
        &[batch * 2, shape.0 * shape.1 * shape.2],
        0.0,
        1.0,
        &mut rng,
    );
    let net = ConvNet::new(arch, shape, classes, &mut rng);
    StepState {
        net,
        loss: CrossEntropyLoss::new(),
        opt: Sgd::new(0.05, 0.9, 5e-4),
        x,
        chunk: (0..batch).collect(),
        by: (0..batch).map(|i| i % classes).collect(),
        preds: Vec::with_capacity(batch),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (audit_steps, samples) = if smoke { (3, 3) } else { (10, 20) };
    let warmup = 5;
    let (batch, shape) = (16usize, (3usize, 16usize, 16usize));
    let mut state = make_state(11);

    // --- Allocation audit: single-threaded so chunk->thread assignment
    // cannot move a first-touch workspace miss into the measured window.
    let ambient = par::num_threads();
    par::set_num_threads(1);
    for _ in 0..warmup {
        std::hint::black_box(state.step());
    }
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..audit_steps {
        std::hint::black_box(state.step());
    }
    let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
    let per_step = allocs as f64 / audit_steps as f64;
    println!("allocations per steady-state step: {per_step} ({allocs} over {audit_steps} steps)");
    if allocs > 0 {
        std::hint::black_box(state.step_traced());
    }

    // --- Concurrent-jobs audit: two independent jobs, each scoped to an
    // inner budget of one thread (the scheduler's split when jobs ≥
    // threads), must also be allocation-free in steady state. The scratch
    // pool is process-global, so two concurrent steps keep up to twice one
    // job's buffer working set in flight — and per-worker warm-up alone
    // only proves the pool holds ONE set (the second worker's warm-up
    // reuses the first's parked buffers). To make the audit deterministic
    // rather than interleaving-dependent, the pool is force-stocked to the
    // two-job peak before the window opens: drain it (holding the parked
    // buffers aside), let worker 0 re-warm against the empty pool so it
    // parks a fresh working set of its own, then give the held buffers
    // back. The pool then holds two disjoint working sets, so no
    // interleaving of the measured steps can miss. The final `exit`
    // barrier keeps each worker's `StepState` alive until the counter has
    // been read: dropping a whole net gives hundreds of long-lived buffers
    // to the pool, and letting that teardown race the read would smear its
    // bookkeeping allocations into the measured delta.
    let jobs = 2usize;
    let barrier = || std::sync::Barrier::new(jobs + 1);
    let (warmed, solo_start, solo_end, window, done, exit) = (
        barrier(),
        barrier(),
        barrier(),
        barrier(),
        barrier(),
        barrier(),
    );
    let concurrent_allocs = std::thread::scope(|s| {
        for j in 0..jobs {
            let (warmed, solo_start, solo_end) = (&warmed, &solo_start, &solo_end);
            let (window, done, exit) = (&window, &done, &exit);
            s.spawn(move || {
                par::with_thread_budget(1, || {
                    let mut st = make_state(23 + j as u64);
                    for _ in 0..warmup {
                        std::hint::black_box(st.step());
                    }
                    warmed.wait();
                    solo_start.wait();
                    if j == 0 {
                        for _ in 0..warmup {
                            std::hint::black_box(st.step());
                        }
                    }
                    solo_end.wait();
                    window.wait();
                    for _ in 0..audit_steps {
                        std::hint::black_box(st.step());
                    }
                    done.wait();
                    exit.wait();
                });
            });
        }
        warmed.wait();
        let held = eos_tensor::scratch::drain();
        solo_start.wait();
        solo_end.wait();
        for v in held {
            eos_tensor::scratch::give(v);
        }
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        window.wait();
        done.wait();
        let allocs = ALLOCATIONS.load(Ordering::SeqCst) - before;
        exit.wait();
        allocs
    });
    let concurrent_per_step = concurrent_allocs as f64 / (jobs * audit_steps) as f64;
    println!(
        "allocations per steady-state step ({jobs} concurrent jobs): {concurrent_per_step} \
         ({concurrent_allocs} over {jobs}x{audit_steps} steps)"
    );

    // --- Timing at one thread and at the ambient budget.
    let serial = bench_stats("train step (1 thread)", samples, || state.step());
    par::set_num_threads(ambient);
    for _ in 0..warmup {
        std::hint::black_box(state.step());
    }
    let parallel = bench_stats(&format!("train step ({ambient} threads)"), samples, || {
        state.step()
    });

    // --- Tracing overhead: the same step with the trace registry live.
    // The audit and the timings above ran with tracing disabled (its
    // default), so `parallel` is the number the acceptance gate compares
    // against the pre-trace baseline; this block quantifies what enabling
    // spans/counters costs on top.
    eos_trace::set_enabled(true);
    for _ in 0..warmup {
        std::hint::black_box(state.step());
    }
    let traced = bench_stats(
        &format!("train step ({ambient} threads, traced)"),
        samples,
        || state.step(),
    );
    eos_trace::set_enabled(false);
    eos_trace::reset();
    let overhead_pct =
        100.0 * (traced.min.as_nanos() as f64 / parallel.min.as_nanos().max(1) as f64 - 1.0);
    println!("tracing-enabled overhead: {overhead_pct:+.2}% (min-over-min)");

    let mut rec = JsonRecord::new();
    rec.str("bench", "train_step")
        .str("arch", "resnet-1x8")
        .int("batch", batch as u64)
        .int("input_len", (shape.0 * shape.1 * shape.2) as u64)
        .int("audit_steps", audit_steps as u64)
        .num("allocations_per_step", per_step)
        .int("concurrent_jobs", jobs as u64)
        .num("concurrent_allocations_per_step", concurrent_per_step)
        .int("samples", samples as u64)
        .int("serial_mean_ns", serial.mean.as_nanos() as u64)
        .int("serial_min_ns", serial.min.as_nanos() as u64)
        .int("threads", ambient as u64)
        .int("parallel_mean_ns", parallel.mean.as_nanos() as u64)
        .int("parallel_min_ns", parallel.min.as_nanos() as u64)
        .int("traced_mean_ns", traced.mean.as_nanos() as u64)
        .int("traced_min_ns", traced.min.as_nanos() as u64)
        .num("tracing_overhead_pct", overhead_pct);
    rec.write("BENCH_train_step");

    if allocs > 0 {
        eprintln!("FAIL: steady-state training step allocated ({per_step} per step)");
        std::process::exit(1);
    }
    if concurrent_allocs > 0 {
        eprintln!(
            "FAIL: steady-state step allocated under {jobs} concurrent jobs \
             ({concurrent_per_step} per step)"
        );
        std::process::exit(1);
    }
}
