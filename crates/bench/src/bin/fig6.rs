//! Figure 6 binary — see [`eos_bench::tables::fig6`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::fig6::run(&mut eng, &args);
    eng.finish("fig6");
}
