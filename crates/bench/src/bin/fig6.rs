//! Figure 6 binary — see [`eos_bench::tables::fig6`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::fig6::run(&eng, &args);
    eng.finish("fig6");
    if let Err(e) = result {
        eos_bench::exp::report_failure("fig6", &e);
        std::process::exit(1);
    }
}
