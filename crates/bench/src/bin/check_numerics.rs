//! Numerical correctness gate: gradchecks every `Layer` implementation and
//! every loss in the workspace, spot-checks the gap/metric formulas against
//! hand-computed values, and pins a golden-determinism digest of a tiny
//! end-to-end training step across thread counts and kernel dispatch paths.
//!
//! Step sizes follow the f32 central-difference error model (truncation
//! `O(h²)` plus cancellation `O(ε/h)`, minimised near `h ≈ 1e-2` for
//! unit-scale activations); layers whose loss surface has kinks — max-pool
//! window ties, BN-centred ReLUs — use smaller steps on data drawn clear of
//! the kinks. See DESIGN.md for the selection rationale.
//!
//! `--smoke` trims the BN running-stat burn-in; every gradcheck and digest
//! comparison still runs, so `scripts/verify.sh` gets the full gate.

use eos_bench::JsonRecord;
use eos_core::{generalization_gap, ConfusionMatrix};
use eos_gan::{bce_with_logits, mse_loss_and_grad, ConvexMix};
use eos_nn::{
    gradcheck_fn, gradcheck_layer, gradcheck_loss, Architecture, AsymmetricLoss, BasicBlock,
    BatchNorm1d, BatchNorm2d, Conv2d, ConvNet, CrossEntropyLoss, Dropout, FocalLoss, GlobalAvgPool,
    Layer, LdamLoss, LeakyRelu, Linear, Loss, MaxPool2d, Relu, Sgd, Sigmoid, Tanh,
};
use eos_tensor::{normal, par, set_force_scalar_kernel, Conv2dGeometry, Rng64, Tensor};

/// Gradcheck threshold: every analytic/numeric comparison in the gate must
/// land below this maximum relative error.
const THRESHOLD: f32 = 1e-2;

/// Running tally of gate results; any failure flips the process exit code.
struct Gate {
    checks: u64,
    worst: f32,
    worst_name: String,
    failed: bool,
}

impl Gate {
    fn new() -> Self {
        Gate {
            checks: 0,
            worst: 0.0,
            worst_name: String::new(),
            failed: false,
        }
    }

    /// Records one gradcheck result against the shared threshold.
    fn grad(&mut self, check: &eos_nn::GradCheck) {
        self.checks += 1;
        let e = check.max_rel_error();
        if e > self.worst {
            self.worst = e;
            self.worst_name = format!("{}: {}", check.name, check.worst().target);
        }
        if !check.passes(THRESHOLD) {
            let w = check.worst();
            eprintln!(
                "FAIL: {}: {} rel error {} >= {THRESHOLD}",
                check.name, w.target, w.rel_error
            );
            self.failed = true;
        } else {
            println!(
                "  ok {:<28} max rel error {:.2e}",
                check.name,
                check.max_rel_error()
            );
        }
    }

    /// Records an exact-value spot check (`|got − want| ≤ tol`).
    fn value(&mut self, name: &str, got: f64, want: f64, tol: f64) {
        self.checks += 1;
        if (got - want).abs() > tol {
            eprintln!("FAIL: {name}: got {got}, want {want} (tol {tol})");
            self.failed = true;
        } else {
            println!("  ok {name:<28} {got}");
        }
    }

    /// Records a condition that must hold.
    fn claim(&mut self, name: &str, ok: bool) {
        self.checks += 1;
        if ok {
            println!("  ok {name}");
        } else {
            eprintln!("FAIL: {name}");
            self.failed = true;
        }
    }
}

fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> Conv2dGeometry {
    Conv2dGeometry {
        in_channels: c,
        height: h,
        width: w,
        kernel: k,
        stride: s,
        pad: p,
    }
}

/// Gradchecks every `Layer` implementation in `eos-nn` plus the public
/// `ConvexMix` head from `eos-gan`.
fn check_layers(gate: &mut Gate) {
    println!("layers:");
    let x34 = normal(&[3, 4], 0.0, 1.0, &mut Rng64::new(50));
    let c32 = normal(&[3, 2], 0.0, 1.0, &mut Rng64::new(51));
    for bias in [true, false] {
        gate.grad(&gradcheck_layer(
            if bias { "linear+bias" } else { "linear" },
            &mut || Box::new(Linear::new(4, 2, bias, &mut Rng64::new(52))),
            &x34,
            &c32,
            1e-2,
        ));
    }

    // Conv2d across the stride/padding space the networks actually use.
    for (name, g) in [
        ("conv2d s1 p1", geom(2, 5, 4, 3, 1, 1)),
        ("conv2d s2 p1", geom(2, 5, 4, 3, 2, 1)),
        ("conv2d s2 p0", geom(1, 4, 4, 2, 2, 0)),
    ] {
        let probe = Conv2d::new(g, 3, true, &mut Rng64::new(60));
        let x = normal(&[2, probe.in_len()], 0.0, 1.0, &mut Rng64::new(61));
        let c = normal(&[2, probe.out_len()], 0.0, 1.0, &mut Rng64::new(62));
        gate.grad(&gradcheck_layer(
            name,
            &mut || Box::new(Conv2d::new(g, 3, true, &mut Rng64::new(60))),
            &x,
            &c,
            1e-2,
        ));
    }

    // BatchNorm in training mode: the backward must account for every
    // element's contribution to the batch statistics.
    let xb = normal(&[6, 3], 0.5, 1.2, &mut Rng64::new(70));
    let cb = normal(&[6, 3], 0.0, 1.0, &mut Rng64::new(71));
    gate.grad(&gradcheck_layer(
        "batchnorm1d",
        &mut || Box::new(BatchNorm1d::new(3)),
        &xb,
        &cb,
        1e-2,
    ));
    let xb2 = normal(&[4, 2 * 4], 0.5, 1.2, &mut Rng64::new(72));
    let cb2 = normal(&[4, 2 * 4], 0.0, 1.0, &mut Rng64::new(73));
    gate.grad(&gradcheck_layer(
        "batchnorm2d",
        &mut || Box::new(BatchNorm2d::new(2, 4)),
        &xb2,
        &cb2,
        1e-2,
    ));

    // Pooling: normal draws put 2x2-window ties (max-pool kinks) at
    // probability zero; eps 1e-3 keeps probe steps from creating them.
    let xp = normal(&[3, 2 * 4 * 4], 0.0, 1.0, &mut Rng64::new(80));
    let cp = normal(&[3, 2 * 2 * 2], 0.0, 1.0, &mut Rng64::new(81));
    gate.grad(&gradcheck_layer(
        "maxpool2d",
        &mut || Box::new(MaxPool2d::new(2, 4, 4)),
        &xp,
        &cp,
        1e-3,
    ));
    let cg = normal(&[3, 2], 0.0, 1.0, &mut Rng64::new(82));
    gate.grad(&gradcheck_layer(
        "global_avg_pool",
        &mut || Box::new(GlobalAvgPool::new(2, 16)),
        &xp,
        &cg,
        1e-2,
    ));

    // Activations: small eps keeps probes on one side of the ReLU kinks.
    let xa = normal(&[4, 6], 0.0, 1.0, &mut Rng64::new(83));
    let ca = normal(&[4, 6], 0.0, 1.0, &mut Rng64::new(84));
    gate.grad(&gradcheck_layer(
        "relu",
        &mut || Box::new(Relu::new()),
        &xa,
        &ca,
        1e-3,
    ));
    gate.grad(&gradcheck_layer(
        "leaky_relu",
        &mut || Box::new(LeakyRelu::new(0.2)),
        &xa,
        &ca,
        1e-3,
    ));
    gate.grad(&gradcheck_layer(
        "tanh",
        &mut || Box::new(Tanh::new()),
        &xa,
        &ca,
        1e-2,
    ));
    gate.grad(&gradcheck_layer(
        "sigmoid",
        &mut || Box::new(Sigmoid::new()),
        &xa,
        &ca,
        1e-2,
    ));

    // Dropout: rebuilding from the same seed replays the identical mask on
    // every probe, so the piecewise region is fixed.
    for p in [0.25, 0.6] {
        gate.grad(&gradcheck_layer(
            &format!("dropout p={p}"),
            &mut || Box::new(Dropout::new(p, 123)),
            &xa,
            &ca,
            1e-2,
        ));
    }

    // Residual blocks: eps 3e-3 with data drawn clear of the BN-centred
    // output-ReLU kinks (see the resnet unit test for the eps sweep).
    let xr = normal(&[4, 2 * 16], 0.0, 1.0, &mut Rng64::new(200));
    let cri = normal(&[4, 2 * 16], 0.0, 1.0, &mut Rng64::new(201));
    gate.grad(&gradcheck_layer(
        "basic_block identity",
        &mut || Box::new(BasicBlock::new(2, 2, 4, 4, 1, &mut Rng64::new(102))),
        &xr,
        &cri,
        3e-3,
    ));
    let crp = normal(&[4, 3 * 4], 0.0, 1.0, &mut Rng64::new(203));
    gate.grad(&gradcheck_layer(
        "basic_block projection",
        &mut || Box::new(BasicBlock::new(2, 3, 4, 4, 2, &mut Rng64::new(104))),
        &xr,
        &crp,
        3e-3,
    ));

    // GAMO's convex-combination head (softmax backward through a matmul).
    let anchors = normal(&[5, 3], 0.0, 1.0, &mut Rng64::new(90));
    let xm = normal(&[4, 5], 0.0, 1.0, &mut Rng64::new(91));
    let cm = normal(&[4, 3], 0.0, 1.0, &mut Rng64::new(92));
    gate.grad(&gradcheck_layer(
        "convex_mix",
        &mut || Box::new(ConvexMix::new(anchors.clone())),
        &xm,
        &cm,
        1e-2,
    ));
}

/// Gradchecks all four classification losses (weighted and unweighted)
/// plus the two GAN-side loss functions.
fn check_losses(gate: &mut Gate) {
    println!("losses:");
    let logits = normal(&[5, 3], 0.0, 1.5, &mut Rng64::new(40));
    let labels = [0usize, 2, 1, 1, 0];
    let weights = vec![0.25f32, 1.0, 4.0];

    let mut ce = CrossEntropyLoss::new();
    gate.grad(&gradcheck_loss("ce", &ce, &logits, &labels, 1e-2));
    ce.set_class_weights(Some(weights.clone()));
    gate.grad(&gradcheck_loss("ce weighted", &ce, &logits, &labels, 1e-2));

    for gamma in [0.0f32, 2.0] {
        let mut focal = FocalLoss::new(gamma);
        gate.grad(&gradcheck_loss(
            &format!("focal g={gamma}"),
            &focal,
            &logits,
            &labels,
            1e-2,
        ));
        focal.set_class_weights(Some(weights.clone()));
        gate.grad(&gradcheck_loss(
            &format!("focal g={gamma} weighted"),
            &focal,
            &logits,
            &labels,
            1e-2,
        ));
    }

    let counts = [40usize, 10, 4];
    let ldam = LdamLoss::new(&counts, 0.5, 10.0);
    gate.grad(&gradcheck_loss("ldam", &ldam, &logits, &labels, 1e-3));

    let asl = AsymmetricLoss::paper_defaults();
    gate.grad(&gradcheck_loss(
        "asl defaults",
        &asl,
        &logits,
        &labels,
        1e-2,
    ));
    let asl2 = AsymmetricLoss::new(1.0, 2.0, 0.0);
    gate.grad(&gradcheck_loss(
        "asl no-clip",
        &asl2,
        &logits,
        &labels,
        1e-2,
    ));

    // Saturated logits: the regime where clamped-probability losses used
    // to flatten while their gradients kept slope (the defect this gate
    // originally flagged in LDAM). The log-sum-exp / softplus forms must
    // stay consistent with finite differences here.
    let hot = normal(&[5, 3], 0.0, 8.0, &mut Rng64::new(44));
    gate.grad(&gradcheck_loss(
        "ce saturated",
        &CrossEntropyLoss::new(),
        &hot,
        &labels,
        1e-2,
    ));
    gate.grad(&gradcheck_loss(
        "focal g=2 saturated",
        &FocalLoss::new(2.0),
        &hot,
        &labels,
        1e-2,
    ));
    gate.grad(&gradcheck_loss(
        "ldam saturated",
        &LdamLoss::new(&counts, 0.5, 10.0),
        &hot,
        &labels,
        3e-3,
    ));
    gate.grad(&gradcheck_loss(
        "asl saturated",
        &AsymmetricLoss::paper_defaults(),
        &hot,
        &labels,
        1e-3,
    ));

    // GAN discriminator loss: sigmoid BCE on logits, mixed real/fake
    // targets, checked through the generic function helper.
    let glog = normal(&[6, 1], 0.0, 1.5, &mut Rng64::new(41));
    let targets = [1.0f32, 0.0, 1.0, 1.0, 0.0, 0.0];
    gate.grad(&gradcheck_fn("bce_with_logits", &glog, 1e-2, &mut |z| {
        bce_with_logits(z, &targets)
    }));

    // BAGAN autoencoder reconstruction loss.
    let recon = normal(&[4, 6], 0.0, 1.0, &mut Rng64::new(42));
    let target = normal(&[4, 6], 0.0, 1.0, &mut Rng64::new(43));
    gate.grad(&gradcheck_fn("mse", &recon, 1e-2, &mut |z| {
        mse_loss_and_grad(z, &target)
    }));
}

/// Spot-checks the gap and metric formulas against hand-computed values.
fn check_formulas(gate: &mut Gate) {
    println!("formulas:");
    // Two classes, one feature. Class 0: train range [0,1], test range
    // [-0.25, 1.5] -> 0.25 below + 0.5 above = 0.75. Class 1: test inside
    // train -> 0. Mean = 0.375.
    let train_fe = Tensor::from_vec(vec![0.0, 1.0, -2.0, 2.0], &[4, 1]);
    let train_y = [0usize, 0, 1, 1];
    let test_fe = Tensor::from_vec(vec![-0.25, 1.5, 0.0], &[3, 1]);
    let test_y = [0usize, 0, 1];
    let gaps = generalization_gap(&train_fe, &train_y, &test_fe, &test_y, 2);
    gate.value("gap class0", gaps.per_class[0], 0.75, 1e-9);
    gate.value("gap class1", gaps.per_class[1], 0.0, 1e-9);
    gate.value("gap mean", gaps.mean, 0.375, 1e-9);

    // Recalls 0.9 (9/10 of class 0) and 0.5 (1/2 of class 1):
    // BAC = 0.7, G-mean = sqrt(0.45), accuracy = 10/12.
    // Precisions: 9/10 and 1/2, so per-class F1s are 0.9 and 0.5 and the
    // macro-F1 is 0.7.
    let y_true: Vec<usize> = [vec![0usize; 10], vec![1usize; 2]].concat();
    let y_pred: Vec<usize> = [vec![0usize; 9], vec![1], vec![1], vec![0]].concat();
    let cm = ConfusionMatrix::from_predictions(&y_true, &y_pred, 2);
    gate.value("balanced_accuracy", cm.balanced_accuracy(), 0.7, 1e-9);
    gate.value("g_mean", cm.g_mean(), 0.45f64.sqrt(), 1e-9);
    gate.value("accuracy", cm.accuracy(), 10.0 / 12.0, 1e-9);
    gate.value("macro_f1", cm.macro_f1(), 0.7, 1e-9);
}

/// Verifies BatchNorm's train/eval consistency: after enough train-mode
/// batches from a fixed distribution, eval-mode output must match the
/// train-mode normalisation of that distribution.
fn check_batchnorm_stats(gate: &mut Gate, smoke: bool) {
    println!("batchnorm running stats:");
    let mut bn = BatchNorm1d::new(3);
    let mut rng = Rng64::new(7);
    let burn_in = if smoke { 200 } else { 1000 };
    for _ in 0..burn_in {
        let x = normal(&[32, 3], 2.0, 1.5, &mut rng);
        let _ = bn.forward(&x, true);
    }
    // Fresh batch, eval mode: running stats should normalise N(2, 1.5)
    // close to N(0, 1) (gamma = 1, beta = 0 untrained).
    let x = normal(&[512, 3], 2.0, 1.5, &mut rng);
    let y = bn.forward(&x, false);
    let mean = y.mean();
    let var = y
        .data()
        .iter()
        .map(|v| (v - mean) * (v - mean))
        .sum::<f32>()
        / y.len() as f32;
    gate.value("bn eval mean", mean as f64, 0.0, 0.1);
    gate.value("bn eval var", var as f64, 1.0, 0.15);
}

/// Digest of one short training run: two SGD steps on a tiny ResNet,
/// folding the loss bits, the logits and every parameter into one value.
fn train_digest(threads: usize, force_scalar: bool) -> u64 {
    par::set_num_threads(threads);
    set_force_scalar_kernel(force_scalar);
    let mut rng = Rng64::new(33);
    let arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 4,
    };
    let mut net = ConvNet::new(arch, (3, 8, 8), 3, &mut rng);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let loss = CrossEntropyLoss::new();
    let x = normal(&[8, 3 * 64], 0.0, 1.0, &mut Rng64::new(34));
    let y = [0usize, 1, 2, 0, 1, 2, 0, 1];
    let mut digest = 0xcbf29ce484222325u64;
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x100000001b3);
    };
    for _ in 0..2 {
        net.zero_grad();
        let logits = net.forward(&x, true);
        let (l, dl) = loss.loss_and_grad(&logits, &y);
        let _ = net.backward(&dl);
        opt.step_visit(&mut net);
        fold(l.to_bits() as u64);
        fold(logits.bits_digest());
    }
    net.visit_params(&mut |p| fold(p.value.bits_digest()));
    digest
}

/// Golden determinism: the training digest must be identical across thread
/// counts and across the AVX2/scalar kernel dispatch.
fn check_determinism(gate: &mut Gate) {
    println!("golden determinism:");
    let ambient = par::num_threads();
    let golden = train_digest(1, false);
    gate.claim(
        "digest reproducible at t=1",
        golden == train_digest(1, false),
    );
    for threads in [2usize, 4, 8] {
        gate.claim(
            &format!("digest stable at t={threads}"),
            golden == train_digest(threads, false),
        );
    }
    gate.claim(
        "digest stable scalar kernel",
        golden == train_digest(4, true),
    );
    set_force_scalar_kernel(false);
    par::set_num_threads(ambient);
    println!("  golden digest {golden:#018x}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut gate = Gate::new();

    check_layers(&mut gate);
    check_losses(&mut gate);
    check_formulas(&mut gate);
    check_batchnorm_stats(&mut gate, smoke);
    check_determinism(&mut gate);

    println!(
        "{} checks, worst gradcheck {:.2e} ({})",
        gate.checks, gate.worst, gate.worst_name
    );

    let mut rec = JsonRecord::new();
    rec.str("bench", "check_numerics")
        .int("checks", gate.checks)
        .num("worst_rel_error", gate.worst as f64)
        .str("worst_target", &gate.worst_name)
        .num("threshold", THRESHOLD as f64)
        .bool("passed", !gate.failed);
    rec.write("CHECK_numerics");

    if gate.failed {
        eprintln!("FAIL: numerical correctness gate");
        std::process::exit(1);
    }
    println!("numerical correctness gate passed");
}
