//! Figure 7 binary — see [`eos_bench::tables::fig7`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    tables::fig7::run(&eng, &args);
    eng.finish("fig7");
}
