//! Figure 7 binary — see [`eos_bench::tables::fig7`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let eng = Engine::new(&args);
    let result = tables::fig7::run(&eng, &args);
    eng.finish("fig7");
    if let Err(e) = result {
        eos_bench::exp::report_failure("fig7", &e);
        std::process::exit(1);
    }
}
