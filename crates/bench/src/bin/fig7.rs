//! Figure 7 — Balanced accuracy vs classifier-retraining epoch, EOS vs
//! SMOTE, cross-entropy on the cifar10 analogue, 30 epochs.
//!
//! Paper shape: both methods plateau by roughly epoch 10 (the framework's
//! chosen budget); EOS gains marginally from longer retraining, SMOTE
//! does not.

use eos_bench::{name_hash, prepared_dataset, write_csv, Args, MarkdownTable};
use eos_core::{Eos, ThreePhase};
use eos_nn::LossKind;
use eos_resample::Smote;
use eos_tensor::Rng64;

const EPOCHS: usize = 30;

fn main() {
    let args = Args::parse();
    let cfg = args.scale.pipeline();
    let (train, test) = prepared_dataset("cifar10", args.scale, args.seed);
    let mut rng = Rng64::new(args.seed ^ name_hash("fig7"));
    eprintln!("[fig7] training backbone ...");
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    eprintln!("[fig7] tracing SMOTE ...");
    let smote = tp.finetune_trace(&Smote::new(5), &test, EPOCHS, &cfg, &mut rng);
    eprintln!("[fig7] tracing EOS ...");
    let eos = tp.finetune_trace(&Eos::new(10), &test, EPOCHS, &cfg, &mut rng);
    let mut table = MarkdownTable::new(&[
        "Epoch",
        "SMOTE train BAC",
        "SMOTE test BAC",
        "EOS train BAC",
        "EOS test BAC",
    ]);
    for e in 0..EPOCHS {
        table.row(vec![
            (e + 1).to_string(),
            format!("{:.4}", smote[e].0),
            format!("{:.4}", smote[e].1),
            format!("{:.4}", eos[e].0),
            format!("{:.4}", eos[e].1),
        ]);
    }
    println!(
        "\nFigure 7 reproduction — retraining-epoch trace (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    let at = |trace: &[(f64, f64)], e: usize| trace[e.min(trace.len() - 1)].1;
    println!(
        "plateau check — test BAC at epoch 10 vs 30: SMOTE {:.4} -> {:.4}, EOS {:.4} -> {:.4}",
        at(&smote, 9),
        at(&smote, 29),
        at(&eos, 9),
        at(&eos, 29)
    );
    write_csv(&table, "fig7");
}
