//! Figure 7 binary — see [`eos_bench::tables::fig7`].

use eos_bench::{tables, Args, Engine};

fn main() {
    let args = Args::parse();
    let mut eng = Engine::new(&args);
    tables::fig7::run(&mut eng, &args);
    eng.finish("fig7");
}
