//! # eos-bench
//!
//! Experiment harness for the reproduction: shared CLI argument handling,
//! dataset preparation, backbone caching, and report formatting used by
//! the per-table/per-figure binaries (`table1` … `table5`, `fig3` …
//! `fig7`, `runtime`, `pixel_eos`).
//!
//! Every binary accepts `--scale small|medium`, `--seed N` and
//! `--datasets a,b,c`, prints a markdown table mirroring the paper's
//! layout, and writes a CSV under `results/`.

pub mod args;
pub mod report;
pub mod runner;
pub mod timing;

pub use args::Args;
pub use report::{write_csv, MarkdownTable};
pub use runner::{name_hash, prepared_dataset, samplers_for_table2};
pub use timing::{bench, bench_stats, format_duration, BenchStats, JsonRecord};
