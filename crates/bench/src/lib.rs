//! # eos-bench
//!
//! Experiment harness for the reproduction: shared CLI argument handling,
//! dataset preparation, the spec-driven experiment engine with its
//! content-addressed backbone cache ([`exp`]), the table/figure modules
//! ([`tables`]) behind the per-experiment binaries (`table1` … `table5`,
//! `fig3` … `fig7`, `runtime`, `pixel_eos`, …) and the all-in-one `suite`
//! runner, plus report formatting.
//!
//! Every binary accepts `--scale smoke|small|medium`, `--seed N`,
//! `--datasets a,b,c` and `--no-cache`, prints a markdown table mirroring
//! the paper's layout, and writes a CSV under `results/`. Reruns serve
//! every backbone from the artifact cache and produce byte-identical
//! output.

pub mod args;
pub mod exp;
pub mod report;
pub mod runner;
pub mod tables;
pub mod timing;

pub use args::Args;
pub use exp::{ArtifactCache, BackbonePlan, Engine, EngineError, ExperimentSpec, SamplerSpec};
pub use report::{write_csv, MarkdownTable};
pub use runner::{name_hash, prepared_dataset, samplers_for_table2};
pub use timing::{bench, bench_stats, format_duration, percentile, BenchStats, JsonRecord};
