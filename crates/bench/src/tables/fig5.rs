//! Figure 5 — Classifier weight norms per class, before and after
//! embedding-space oversampling.
//!
//! Paper shape: cost-sensitive baselines leave monotonically shrinking
//! norms toward the minority classes; oversampled heads flatten them, and
//! EOS usually shows the largest, most even norms.

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_core::head_weight_norms;
use eos_nn::LossKind;
use std::sync::Arc;

/// Standard backbones: every dataset × every loss.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .flat_map(|&d| LossKind::ALL.map(|loss| BackbonePlan::new(d, loss)))
        .collect()
}

/// Produces the figure's CSV. One journaled cell per dataset × loss
/// group; the fine-tunes inside a group stay sequential on its own
/// backbone (each re-initialises the head from its cell's stream, so the
/// order cannot matter — but the rows must come out in method order).
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&["Dataset", "Algo", "Method", "Class", "Norm"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        for loss in LossKind::ALL {
            let pair = Arc::clone(&pair);
            let label = format!("{dataset}/{}", loss.name());
            labels.push(label.clone());
            tasks.push(eng.cell("fig5", label, move || {
                let train = &pair.0;
                eprintln!("[fig5] {dataset} / {} ...", loss.name());
                let mut tp = eng.backbone(train, loss, &cfg)?;
                let mut rows = Rows::new();
                let record = |method: &str, norms: &[f32], rows: &mut Rows| {
                    for (c, &n) in norms.iter().enumerate() {
                        rows.push(vec![
                            dataset.to_string(),
                            loss.name().into(),
                            method.into(),
                            c.to_string(),
                            format!("{n:.4}"),
                        ]);
                    }
                };
                record("Baseline", &head_weight_norms(&tp.net), &mut rows);
                let mut methods: Vec<SamplerSpec> = SamplerSpec::classic_lineup().to_vec();
                methods.push(SamplerSpec::eos(10));
                for sampler in methods {
                    let spec = ExperimentSpec {
                        table: "fig5",
                        dataset,
                        loss,
                        sampler,
                        scale: eng.scale,
                        seed: eng.seed,
                    };
                    let built = sampler.build().expect("non-baseline");
                    let _ = tp.finetune_head(Some(built.as_ref()), &cfg, &mut spec.rng());
                    record(sampler.name(), &head_weight_norms(&tp.net), &mut rows);
                }
                Ok(rows)
            }));
        }
    }
    for rows in gather("fig5", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nFigure 5 reproduction — classifier weight norms per class (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "fig5");
    Ok(())
}
