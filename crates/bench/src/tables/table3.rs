//! Table III — GAN-based over-sampling (GAMO, BAGAN, CGAN) vs EOS.
//!
//! GAN samplers act as pre-processing in *embedding space* for a fair
//! apples-to-apples comparison of sample placement (the paper's GANs
//! generate images; placement quality, not pixel fidelity, is what the
//! table measures). The CSV reports the synthetic-row count per method (a
//! deterministic proxy for model-induction effort); the measured
//! oversampling wall-clock goes to stderr so the table bytes stay
//! reproducible. Paper shape: GAMO/BAGAN clearly below EOS; CGAN
//! competitive but far more expensive, especially on the many-class
//! dataset.

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;
use std::sync::Arc;
use std::time::Instant;

/// Standard backbones: every dataset × every loss.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .flat_map(|&d| LossKind::ALL.map(|loss| BackbonePlan::new(d, loss)))
        .collect()
}

/// Produces the table. One journaled cell per dataset × loss group; the
/// measured oversampling seconds stay on stderr, so the rows are
/// identical at any job count (and on journal replay).
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table =
        MarkdownTable::new(&["Dataset", "Algo", "Method", "BAC", "GM", "FM", "SynthRows"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        for loss in LossKind::ALL {
            let pair = Arc::clone(&pair);
            let label = format!("{dataset}/{}", loss.name());
            labels.push(label.clone());
            tasks.push(eng.cell("table3", label, move || {
                let (train, test) = (&pair.0, &pair.1);
                eprintln!("[table3] {dataset} / {} ...", loss.name());
                let mut tp = eng.backbone(train, loss, &cfg)?;
                let methods = [
                    SamplerSpec::GamoLite,
                    SamplerSpec::BaganLite,
                    // DeepSMOTE (the authors' prior work, ref [48]) added
                    // as an extension column beyond the paper's table.
                    SamplerSpec::DeepSmote,
                    SamplerSpec::CGan,
                    SamplerSpec::eos(10),
                ];
                let mut rows = Rows::new();
                for sampler in methods {
                    let spec = ExperimentSpec {
                        table: "table3",
                        dataset,
                        loss,
                        sampler,
                        scale: eng.scale,
                        seed: eng.seed,
                    };
                    let built = sampler.build().expect("non-baseline");
                    // Time the oversampling itself (the model-induction
                    // cost) on the cell's own stream; the fine-tune below
                    // restarts the same stream, so it trains on these
                    // exact samples.
                    let t0 = Instant::now();
                    let (_, sy) = built.oversample(
                        &tp.train_fe,
                        &tp.train_y,
                        tp.num_classes,
                        &mut spec.rng(),
                    );
                    let os_seconds = t0.elapsed().as_secs_f64();
                    eprintln!(
                        "[table3]   {} oversample: {os_seconds:.3}s, {} synthetic rows",
                        sampler.name(),
                        sy.len()
                    );
                    let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                    rows.push(vec![
                        dataset.to_string(),
                        loss.name().into(),
                        sampler.name().into(),
                        paper_fmt(r.bac),
                        paper_fmt(r.gm),
                        paper_fmt(r.f1),
                        sy.len().to_string(),
                    ]);
                }
                Ok(rows)
            }));
        }
    }
    for rows in gather("table3", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nTable III reproduction — GAN-based oversampling vs EOS (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table3");
    Ok(())
}
