//! §V-E3 — EOS in pixel space vs feature-embedding space (cifar10
//! analogue, CE loss). Includes the interpolation-direction ablation.
//!
//! Paper shape: pixel-space EOS trails embedding-space EOS by a wide
//! margin (~7 BAC points in the paper) because pixel-space nearest
//! adversaries are far less discriminative than embedding-space ones.
//! The direction ablation contrasts the paper's prose (toward-enemy
//! convex combination) with the literal Algorithm 2 formula
//! (away-from-enemy extrapolation).

use crate::exp::{
    dec_f64, enc_f64, run_jobs, BackbonePlan, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_core::Direction;
use eos_nn::LossKind;
use std::sync::Arc;

/// Standard backbones: cifar10 / CE (the embedding-space arm).
pub fn plan(_args: &Args) -> Vec<BackbonePlan> {
    vec![BackbonePlan::new("cifar10", LossKind::Ce)]
}

/// Produces the table. Two journaled cells — the pixel-space arm (its
/// own enlarged backbone) and the embedding-space arm (shared backbone
/// plus both direction fine-tunes). Each cell's first journal row is a
/// meta row holding its headline BAC as an f64 bit pattern, so the
/// advantage line prints identical digits on replay; the remaining rows
/// are the table rows.
pub fn run(eng: &Engine, _args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let pair = eng.dataset("cifar10");
    let mut table = MarkdownTable::new(&["Variant", "BAC", "GM", "FM"]);
    let (scale, seed) = (eng.scale, eng.seed);
    let cell = move |table_tag, sampler| ExperimentSpec {
        table: table_tag,
        dataset: "cifar10",
        loss: LossKind::Ce,
        sampler,
        scale,
        seed,
    };

    let pixel_pair = Arc::clone(&pair);
    let pixel_arm = eng.cell("pixel_eos", "pixel".to_string(), move || {
        let (train, test) = (&pixel_pair.0, &pixel_pair.1);
        eprintln!("[pixel_eos] EOS as pixel-space pre-processing ...");
        let enlarged =
            super::oversampled_pixels(train, &cell("pixel_eos-pre", SamplerSpec::eos(10)));
        let mut pixel_tp = eng.backbone(&enlarged, LossKind::Ce, &cfg)?;
        let pixel = pixel_tp.baseline_eval(test);
        Ok(vec![
            vec![enc_f64(pixel.bac)],
            vec![
                "EOS in pixel space (pre-processing)".into(),
                paper_fmt(pixel.bac),
                paper_fmt(pixel.gm),
                paper_fmt(pixel.f1),
            ],
        ])
    });

    let emb_pair = Arc::clone(&pair);
    let emb_arm = eng.cell("pixel_eos", "embedding".to_string(), move || {
        let (train, test) = (&emb_pair.0, &emb_pair.1);
        eprintln!("[pixel_eos] EOS in embedding space ...");
        let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
        let toward = cell("pixel_eos", SamplerSpec::eos(10));
        let built = toward.sampler.build().expect("EOS");
        let fe = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut toward.rng());
        let mut rows = Rows::new();
        rows.push(vec![enc_f64(fe.bac)]);
        rows.push(vec![
            "EOS in embedding space (three-phase)".into(),
            paper_fmt(fe.bac),
            paper_fmt(fe.gm),
            paper_fmt(fe.f1),
        ]);

        eprintln!("[pixel_eos] direction ablation ...");
        let away_spec = cell(
            "pixel_eos",
            SamplerSpec::Eos {
                k: 10,
                direction: Direction::AwayFromEnemy,
                r_scale: 0.5,
            },
        );
        let built = away_spec.sampler.build().expect("EOS");
        let away = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut away_spec.rng());
        rows.push(vec![
            "EOS embedding, away-from-enemy (literal Alg. 2)".into(),
            paper_fmt(away.bac),
            paper_fmt(away.gm),
            paper_fmt(away.f1),
        ]);
        Ok(rows)
    });

    let labels = vec!["pixel".to_string(), "embedding".to_string()];
    let mut results = gather(
        "pixel_eos",
        &labels,
        run_jobs(eng.jobs, vec![pixel_arm, emb_arm]),
    )?;
    let headline = |rows: &mut Rows| -> Result<f64, EngineError> {
        let meta = rows.remove(0);
        dec_f64(&meta[0]).map_err(|e| EngineError::corrupt("pixel_eos headline BAC", e.to_string()))
    };
    let mut emb_rows = results.pop().expect("embedding arm");
    let mut pixel_rows = results.pop().expect("pixel arm");
    let fe_bac = headline(&mut emb_rows)?;
    let pixel_bac = headline(&mut pixel_rows)?;
    for row in pixel_rows.into_iter().chain(emb_rows) {
        table.row(row);
    }

    println!(
        "\n§V-E3 reproduction — EOS pixel vs embedding space (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    println!(
        "embedding-space advantage: {:+.1} BAC points (paper: ~+7)",
        (fe_bac - pixel_bac) * 100.0
    );
    write_csv(&table, "pixel_eos");
    Ok(())
}
