//! Future-work extension experiment: gap-aware EOS (budget allocation
//! proportional to each class's measured generalization gap) versus plain
//! EOS and SMOTE across the dataset analogues (CE loss).
//!
//! This operationalises the paper's §VII future-work direction: "we
//! envision creating complementary measures will lead to a better
//! understanding ... the generalization gap can lead to effective
//! over-sampling".

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;

/// Standard backbones: one CE backbone per dataset.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .map(|&d| BackbonePlan::new(d, LossKind::Ce))
        .collect()
}

/// Produces the table. One journaled cell per dataset: its backbone, the
/// baseline eval and the three method fine-tunes.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&["Dataset", "Method", "BAC", "GM", "FM"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        let label = dataset.to_string();
        labels.push(label.clone());
        tasks.push(eng.cell("gap_eos", label, move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[gap_eos] {dataset} backbone ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let base = tp.baseline_eval(test);
            let mut rows = Rows::new();
            let push = |m: &str, bac: f64, gm: f64, f1: f64, rows: &mut Rows| {
                rows.push(vec![
                    dataset.to_string(),
                    m.into(),
                    paper_fmt(bac),
                    paper_fmt(gm),
                    paper_fmt(f1),
                ]);
            };
            push("Baseline", base.bac, base.gm, base.f1, &mut rows);
            for sampler in [
                SamplerSpec::Smote { k: 5 },
                SamplerSpec::eos(10),
                SamplerSpec::GapAwareEos { k: 10 },
            ] {
                let spec = ExperimentSpec {
                    table: "gap_eos",
                    dataset,
                    loss: LossKind::Ce,
                    sampler,
                    scale: eng.scale,
                    seed: eng.seed,
                };
                let built = sampler.build().expect("non-baseline");
                let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                push(sampler.name(), r.bac, r.gm, r.f1, &mut rows);
            }
            Ok(rows)
        }));
    }
    for rows in gather("gap_eos", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nExtension — gap-aware EOS (future work, §VII) (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "gap_eos");
    Ok(())
}
