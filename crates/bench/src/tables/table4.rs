//! Table IV — EOS nearest-neighbour size (K) sensitivity.
//!
//! K ∈ {10, 50, 100, 200, 300} with cross-entropy. Paper shape: BAC
//! improves with K and plateaus by K ≈ 200–300 (a larger enemy
//! neighbourhood gives a more diverse range expansion).

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;

const KS: [usize; 5] = [10, 50, 100, 200, 300];

/// Standard backbones: one CE backbone per dataset.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .map(|&d| BackbonePlan::new(d, LossKind::Ce))
        .collect()
}

/// Produces the table. One journaled cell per dataset: its backbone plus
/// the K sweep.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&["Dataset", "K", "BAC", "GM", "FM"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        let label = dataset.to_string();
        labels.push(label.clone());
        tasks.push(eng.cell("table4", label, move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[table4] {dataset} backbone ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let mut rows = Rows::new();
            for k in KS {
                // K cannot exceed the number of other samples.
                let k_eff = k.min(train.len().saturating_sub(1)).max(1);
                let spec = ExperimentSpec {
                    table: "table4",
                    dataset,
                    loss: LossKind::Ce,
                    sampler: SamplerSpec::eos(k_eff),
                    scale: eng.scale,
                    seed: eng.seed,
                };
                let built = spec.sampler.build().expect("EOS");
                let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                rows.push(vec![
                    dataset.to_string(),
                    k.to_string(),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                ]);
            }
            Ok(rows)
        }));
    }
    for rows in gather("table4", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nTable IV reproduction — EOS neighbourhood-size sweep (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table4");
    Ok(())
}
