//! §V-E2 — Model run time: EOS three-phase pipeline vs pre-processing
//! oversampling, cifar10 analogue.
//!
//! Paper numbers: pre-processing averages 126.9 min vs EOS 43.9 min
//! (≈2.9×) because pre-processing trains the full CNN on the *enlarged*
//! pixel set while EOS trains on the imbalanced set and then retrains a
//! ~1K-parameter head on low-dimensional embeddings for 10 epochs. The
//! reproduction measures the same two pipelines at reproduction scale —
//! the ratio, not the minutes, is the reproduced quantity.
//!
//! This module deliberately bypasses the artifact cache: its entire
//! subject is the *cost* of training, so every pipeline runs fresh and
//! the CSV carries wall-clock columns (and is therefore the one output
//! exempt from the byte-identical warm-rerun guarantee).

use crate::exp::mix_rng;
use crate::runner::prepared_dataset;
use crate::{write_csv, Args, MarkdownTable};
use eos_core::{preprocess_and_train, Eos, ThreePhase};
use eos_nn::{train_epochs, ConvNet, LossKind, TrainConfig};
use eos_resample::balance_with;
use eos_tensor::{par, Rng64};
use std::time::Instant;

fn timed(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Runs the timing comparison (always cache-free).
pub fn run(args: &Args) {
    let cfg = args.scale.pipeline();
    let (train, test) = prepared_dataset("cifar10", args.scale, args.seed);

    // --- Execution-layer check: serial vs parallel wall-clock ------------
    // The same workload at `EOS_NUM_THREADS = 1` and at the ambient budget;
    // the execution layer guarantees identical outputs, so only the clock
    // may move.
    // On a single-core machine the ambient budget is 1; still drive the
    // pool with 4 time-sharing threads so the dispatch path is measured
    // (the speedup column only means something with real cores).
    let ambient = par::num_threads().max(4);
    let one_epoch = || {
        let mut rng = Rng64::new(args.seed);
        let mut net = ConvNet::new(cfg.arch, train.shape, train.num_classes, &mut rng);
        let counts = train.class_counts();
        let mut loss = LossKind::Ce.build(&counts);
        let tc = TrainConfig {
            epochs: 1,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
            schedule: None,
            drw_epoch: None,
            checkpoint: None,
        };
        let _ = train_epochs(
            &mut net,
            loss.as_mut(),
            &train.x,
            &train.y,
            &tc,
            None,
            &mut rng,
        );
    };
    let eos_pass = || {
        let mut rng = Rng64::new(args.seed);
        let _ = balance_with(
            &Eos::new(10),
            &train.x,
            &train.y,
            train.num_classes,
            &mut rng,
        );
    };
    eprintln!(
        "[runtime] timing one training epoch + one EOS pass, serial vs {ambient} threads ..."
    );
    par::set_num_threads(1);
    let (epoch_serial, eos_serial) = (timed(one_epoch), timed(eos_pass));
    par::set_num_threads(ambient);
    let (epoch_par, eos_par) = (timed(one_epoch), timed(eos_pass));
    let par_header = format!("Parallel s ({ambient} threads)");
    let mut thr_table =
        MarkdownTable::new(&["Workload", "Serial s", par_header.as_str(), "Speedup"]);
    for (name, serial, parallel) in [
        ("One training epoch", epoch_serial, epoch_par),
        ("One EOS resampling pass", eos_serial, eos_par),
    ] {
        thr_table.row(vec![
            name.into(),
            format!("{serial:.3}"),
            format!("{parallel:.3}"),
            format!("{:.2}x", serial / parallel.max(1e-9)),
        ]);
    }
    println!("\nExecution layer — serial vs parallel wall-clock\n");
    println!("{}", thr_table.render());
    write_csv(&thr_table, "runtime_threading");

    let mut table = MarkdownTable::new(&["Pipeline", "BAC", "Seconds"]);

    // Pre-processing arm: average over the three classical oversamplers,
    // as the paper does.
    let mut pre_total = 0.0f64;
    let pre_samplers = crate::samplers_for_table2();
    let mut rng = mix_rng(args.seed, &["runtime"]);
    for sampler in &pre_samplers {
        eprintln!("[runtime] pre-processing with {} ...", sampler.name());
        let r = preprocess_and_train(
            &train,
            &test,
            LossKind::Ce,
            Some(sampler.as_ref()),
            &cfg,
            &mut rng,
        );
        table.row(vec![
            format!("Pre-{}", sampler.name()),
            format!("{:.4}", r.bac),
            format!("{:.2}", r.seconds),
        ]);
        pre_total += r.seconds;
    }
    let pre_avg = pre_total / pre_samplers.len() as f64;

    // EOS arm: backbone on the imbalanced set + head fine-tune.
    eprintln!("[runtime] EOS three-phase ...");
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let r = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    table.row(vec![
        "EOS (three-phase)".into(),
        format!("{:.4}", r.bac),
        format!("{:.2}", r.seconds),
    ]);

    println!(
        "\n§V-E2 reproduction — pipeline run time (scale {:?}, seed {})\n",
        args.scale, args.seed
    );
    println!("{}", table.render());
    println!(
        "pre-processing avg {:.2}s vs EOS {:.2}s -> ratio {:.2}x (paper: 126.9 vs 43.9 min = 2.9x)",
        pre_avg,
        r.seconds,
        pre_avg / r.seconds.max(1e-9)
    );
    // The parameter-count side of the §V-E2 argument.
    let head_params = tp.net.head.weight().len() + tp.net.head.bias().map_or(0, |b| b.len());
    println!(
        "backbone params: {}, retrained head params: {}",
        tp.net.param_count(),
        head_params
    );
    write_csv(&table, "runtime");
}
