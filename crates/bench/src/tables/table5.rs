//! Table V — Alternative CNN architectures with and without EOS
//! (cifar10 analogue, K = 10).
//!
//! Paper shape: EOS improves every architecture family (ResNet-56,
//! WideResNet, DenseNet) over its end-to-end baseline.

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::gather;
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::{Architecture, LossKind};
use std::sync::Arc;

/// Display label, cell tag, architecture.
fn archs() -> [(&'static str, &'static str, Architecture); 3] {
    [
        (
            "ResNet (deeper)",
            "table5/resnet",
            Architecture::ResNet {
                blocks_per_stage: 2,
                width: 8,
            },
        ),
        (
            "WideResNet",
            "table5/wrn",
            Architecture::WideResNet { k: 2 },
        ),
        (
            "DenseNet",
            "table5/densenet",
            Architecture::DenseNet {
                growth: 6,
                layers_per_block: 2,
            },
        ),
    ]
}

/// Standard backbones: three architecture overrides on cifar10 / CE.
pub fn plan(_args: &Args) -> Vec<BackbonePlan> {
    archs()
        .iter()
        .map(|&(_, _, arch)| BackbonePlan {
            dataset: "cifar10",
            loss: LossKind::Ce,
            arch: Some(arch),
        })
        .collect()
}

/// Produces the table. One journaled cell per architecture: its backbone
/// override, the end-to-end baseline and the EOS fine-tune.
pub fn run(eng: &Engine, _args: &Args) -> Result<(), EngineError> {
    let base_cfg = eng.cfg();
    let pair = eng.dataset("cifar10");
    let mut table = MarkdownTable::new(&["Network", "BAC", "GM", "FM"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for (name, tag, arch) in archs() {
        let pair = Arc::clone(&pair);
        // The cell tag already carries the table prefix; the cell label
        // is just the architecture part ("resnet", "wrn", "densenet").
        let label = tag.rsplit('/').next().unwrap_or(tag).to_string();
        labels.push(label.clone());
        tasks.push(eng.cell("table5", label, move || {
            let (train, test) = (&pair.0, &pair.1);
            let mut cfg = base_cfg;
            cfg.arch = arch;
            eprintln!("[table5] {name} ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let base = tp.baseline_eval(test);
            let spec = ExperimentSpec {
                table: tag,
                dataset: "cifar10",
                loss: LossKind::Ce,
                sampler: SamplerSpec::eos(10),
                scale: eng.scale,
                seed: eng.seed,
            };
            let built = spec.sampler.build().expect("EOS");
            let eos = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
            Ok(vec![
                vec![
                    name.to_string(),
                    paper_fmt(base.bac),
                    paper_fmt(base.gm),
                    paper_fmt(base.f1),
                ],
                vec![
                    format!("EOS: {name}"),
                    paper_fmt(eos.bac),
                    paper_fmt(eos.gm),
                    paper_fmt(eos.f1),
                ],
            ])
        }));
    }
    for rows in gather("table5", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nTable V reproduction — architectures with & without EOS (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table5");
    Ok(())
}
