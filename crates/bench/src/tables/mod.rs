//! Declarative table/figure reproductions over the experiment engine.
//!
//! Every table or figure of the paper lives here as a module with two
//! entry points:
//!
//! - `plan(&Args) -> Vec<BackbonePlan>` — the standard backbones the
//!   table needs, so the `suite` binary can collect every table's plan,
//!   dedupe shared trainings and prewarm the cache before running
//!   anything. Derived backbones (oversampled pixel sets, the step
//!   ablation) are not in the plan; they still go through
//!   [`Engine::backbone`](crate::exp::Engine::backbone) inside `run` and
//!   are cached by dataset content like everything else.
//! - `run(&Engine, &Args)` — produces the table: prints the rendered
//!   markdown to stdout and writes the CSV under `results/`.
//!
//! The per-table binaries are thin wrappers (`Engine::new` → `run` →
//! `Engine::finish`). Each experiment cell derives its RNG from its
//! [`ExperimentSpec`](crate::exp::ExperimentSpec) fingerprint, so CSV
//! output is byte-identical between cold and warm-cache runs — and, by
//! the same argument, between `--jobs 1` and `--jobs N`: the modules
//! split their work into independent group jobs (one backbone and its
//! dependent cells per job), run them on
//! [`run_jobs`](crate::exp::run_jobs), and append each job's returned
//! [`Rows`] in input order. Only stderr progress lines may interleave.

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod gap_eos;
pub mod pixel_eos;
pub mod runtime;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::exp::ExperimentSpec;
use eos_data::Dataset;
use eos_resample::balance_with;

/// Table rows produced by one parallel group job, appended to the
/// markdown table in job-submission order.
pub(crate) type Rows = Vec<Vec<String>>;

/// The pre-processing arm's input: the train set enlarged by the cell's
/// oversampler in **pixel space**. Training the full network on this set
/// is exactly the paper's pre-processing pipeline, and because the engine
/// fingerprints datasets by content, those trainings cache like any
/// other backbone.
pub(crate) fn oversampled_pixels(train: &Dataset, spec: &ExperimentSpec) -> Dataset {
    let sampler = spec
        .sampler
        .build()
        .expect("the pre-processing arm needs a real oversampler");
    let (bx, by) = balance_with(
        sampler.as_ref(),
        &train.x,
        &train.y,
        train.num_classes,
        &mut spec.rng(),
    );
    Dataset::new(bx, by, train.shape, train.num_classes)
}
