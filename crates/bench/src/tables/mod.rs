//! Declarative table/figure reproductions over the experiment engine.
//!
//! Every table or figure of the paper lives here as a module with two
//! entry points:
//!
//! - `plan(&Args) -> Vec<BackbonePlan>` — the standard backbones the
//!   table needs, so the `suite` binary can collect every table's plan,
//!   dedupe shared trainings and prewarm the cache before running
//!   anything. Derived backbones (oversampled pixel sets, the step
//!   ablation) are not in the plan; they still go through
//!   [`Engine::backbone`](crate::exp::Engine::backbone) inside `run` and
//!   are cached by dataset content like everything else.
//! - `run(&Engine, &Args)` — produces the table: prints the rendered
//!   markdown to stdout and writes the CSV under `results/`.
//!
//! The per-table binaries are thin wrappers (`Engine::new` → `run` →
//! `Engine::finish`, reporting and exiting nonzero on `Err`). Each
//! experiment cell derives its RNG from its
//! [`ExperimentSpec`](crate::exp::ExperimentSpec) fingerprint, so CSV
//! output is byte-identical between cold and warm-cache runs — and, by
//! the same argument, between `--jobs 1` and `--jobs N`: the modules
//! split their work into independent group jobs (one backbone and its
//! dependent cells per job), wrap each in
//! [`Engine::cell`](crate::exp::Engine::cell) (journal replay + fault
//! injection + typed errors), run them on
//! [`run_jobs`](crate::exp::run_jobs), and append each job's returned
//! [`Rows`] in input order. Only stderr progress lines may interleave.
//!
//! `run` returns `Result<(), EngineError>`: failed cells are collected
//! into one [`EngineError::Cells`] per table (via [`gather`]) after
//! every surviving cell has finished — and, because surviving cells are
//! journaled, a rerun recomputes only what failed.

pub mod ablations;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod gap_eos;
pub mod pixel_eos;
pub mod runtime;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::exp::{CellFailure, EngineError, ExperimentSpec, JobPanic};
use eos_data::Dataset;
use eos_resample::balance_with;

/// Table rows produced by one parallel group job, appended to the
/// markdown table in job-submission order (the journal's row type).
pub(crate) type Rows = crate::exp::Rows;

/// Collects a batch of scheduler outcomes into per-cell row sets, or one
/// [`EngineError::Cells`] roll-up if any cell failed. `labels` names the
/// cells in submission order (same length as `outcomes`); successful
/// siblings of a failed cell are already journaled by
/// [`Engine::cell`](crate::exp::Engine::cell), so only the failures are
/// lost. Each failure ticks `exp.cell.failed`.
pub(crate) fn gather(
    table: &'static str,
    labels: &[String],
    outcomes: Vec<Result<Result<Rows, EngineError>, JobPanic>>,
) -> Result<Vec<Rows>, EngineError> {
    assert_eq!(labels.len(), outcomes.len(), "one label per cell");
    let mut rows = Vec::with_capacity(outcomes.len());
    let mut failures = Vec::new();
    for (label, outcome) in labels.iter().zip(outcomes) {
        let cell = format!("{table}/{label}");
        let error = match outcome {
            Ok(Ok(r)) => {
                rows.push(r);
                continue;
            }
            Ok(Err(e)) => e,
            Err(p) => EngineError::TaskPanic {
                label: cell.clone(),
                message: p.message,
            },
        };
        eos_trace::counter("exp.cell.failed").add(1);
        failures.push(CellFailure { cell, error });
    }
    if failures.is_empty() {
        Ok(rows)
    } else {
        Err(EngineError::Cells { table, failures })
    }
}

/// The pre-processing arm's input: the train set enlarged by the cell's
/// oversampler in **pixel space**. Training the full network on this set
/// is exactly the paper's pre-processing pipeline, and because the engine
/// fingerprints datasets by content, those trainings cache like any
/// other backbone.
pub(crate) fn oversampled_pixels(train: &Dataset, spec: &ExperimentSpec) -> Dataset {
    let sampler = spec
        .sampler
        .build()
        .expect("the pre-processing arm needs a real oversampler");
    let (bx, by) = balance_with(
        sampler.as_ref(),
        &train.x,
        &train.y,
        train.num_classes,
        &mut spec.rng(),
    );
    Dataset::new(bx, by, train.shape, train.num_classes)
}
