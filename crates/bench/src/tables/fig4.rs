//! Figure 4 — Generalization gap of test false positives vs true
//! positives, per dataset.
//!
//! Paper shape: the FP gap is 2–4× the TP gap on every dataset — models
//! generalize (TPs) exactly where train and test embedding ranges align.

use crate::exp::{run_jobs, BackbonePlan, CellTask, Engine, EngineError};
use crate::tables::gather;
use crate::{write_csv, Args, MarkdownTable};
use eos_core::{evaluate, tp_fp_gap};
use eos_nn::LossKind;

/// Standard backbones: one CE backbone per dataset.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .map(|&d| BackbonePlan::new(d, LossKind::Ce))
        .collect()
}

/// Produces the figure's CSV. Fully deterministic given the backbone —
/// no per-cell randomness at all. One journaled cell per dataset.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&["Dataset", "TP gap", "FP gap", "FP/TP"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        let label = dataset.to_string();
        labels.push(label.clone());
        tasks.push(eng.cell("fig4", label, move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[fig4] {dataset} ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let test_fe = tp.embed(test);
            let preds = evaluate(&mut tp.net, test).predictions;
            let report = tp_fp_gap(
                &tp.train_fe,
                &tp.train_y,
                &test_fe,
                &test.y,
                &preds,
                tp.num_classes,
            );
            let ratio = if report.tp_gap > 0.0 {
                report.fp_gap / report.tp_gap
            } else {
                f64::INFINITY
            };
            Ok(vec![vec![
                dataset.to_string(),
                format!("{:.3}", report.tp_gap),
                format!("{:.3}", report.fp_gap),
                format!("{:.2}x", ratio),
            ]])
        }));
    }
    for rows in gather("fig4", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nFigure 4 reproduction — FP vs TP generalization gap (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "fig4");
    Ok(())
}
