//! Figure 6 — t-SNE of the majority/minority pair's embeddings under each
//! oversampling method (the paper's auto-vs-truck visualisation).
//!
//! The synthetic cifar10-like analogue pairs classes 2k/2k+1 by a shared
//! texture; we take the most imbalanced such pair (classes 0 and 9 are
//! not paired, so we use 8 vs 9: majority-ish vs extreme minority — the
//! auto/truck analogue). For each method the module embeds the real +
//! synthetic minority embeddings with t-SNE, writes the 2-D coordinates
//! to CSV for plotting, and prints a separation score (inter-centroid
//! distance over intra-class spread). Paper shape: EOS yields the
//! densest, most uniform minority structure with the widest margin.

use crate::exp::{
    mix_rng, run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;
use eos_resample::balance_with;
use eos_tensor::Tensor;
use eos_tsne::{density_uniformity, separation_score, tsne, TsneConfig};

/// Standard backbones: cifar10 / CE.
pub fn plan(_args: &Args) -> Vec<BackbonePlan> {
    vec![BackbonePlan::new("cifar10", LossKind::Ce)]
}

/// Produces the figure's CSVs. One shared backbone; one journaled cell
/// per method (each only reads the backbone's train embeddings and seeds
/// its own t-SNE stream, so cells are independent — the network itself
/// holds non-`Sync` trait objects and stays on this thread). A cell's
/// first journal row is the summary line; the rest are 2-D coordinates.
pub fn run(eng: &Engine, _args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let pair = eng.dataset("cifar10");
    let train = &pair.0;
    eprintln!("[fig6] training backbone ...");
    let tp = eng.backbone(train, LossKind::Ce, &cfg)?;
    let (train_fe, train_y, num_classes) = (&tp.train_fe, &tp.train_y, tp.num_classes);

    // The paired classes with the largest imbalance between them.
    let (maj, min) = (8usize, 9usize);
    let counts = train.class_counts();
    eprintln!(
        "[fig6] pair: class {maj} ({} samples) vs class {min} ({} samples)",
        counts[maj], counts[min]
    );

    let methods = [
        SamplerSpec::Baseline,
        SamplerSpec::Smote { k: 5 },
        SamplerSpec::BorderlineSmote { k: 5, m: 5 },
        SamplerSpec::BalancedSvm { k: 5 },
        SamplerSpec::eos(10),
    ];
    let mut summary =
        MarkdownTable::new(&["Method", "Points", "Separation", "Minority density CV"]);
    let mut coords = MarkdownTable::new(&["Method", "Class", "x", "y"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for sampler in methods {
        labels.push(sampler.name().to_string());
        tasks.push(eng.cell("fig6", sampler.name().to_string(), move || {
            let name = sampler.name();
            let spec = ExperimentSpec {
                table: "fig6",
                dataset: "cifar10",
                loss: LossKind::Ce,
                sampler,
                scale: eng.scale,
                seed: eng.seed,
            };
            let (fe, y) = match sampler.build() {
                Some(s) => {
                    balance_with(s.as_ref(), train_fe, train_y, num_classes, &mut spec.rng())
                }
                None => (train_fe.clone(), train_y.clone()),
            };
            // Slice out the two classes of interest.
            let rows: Vec<usize> = (0..y.len())
                .filter(|&i| y[i] == maj || y[i] == min)
                .collect();
            let pair_fe = fe.select_rows(&rows);
            let pair_y: Vec<usize> = rows.iter().map(|&i| (y[i] == min) as usize).collect();
            // Cap the point count so t-SNE stays quadratic-cheap.
            let cap = 250.min(pair_fe.dim(0));
            let keep: Vec<usize> = (0..cap).collect();
            let pair_fe = pair_fe.select_rows(&keep);
            let pair_y: Vec<usize> = pair_y[..cap].to_vec();
            eprintln!("[fig6] t-SNE for {name} ({cap} points) ...");
            let y2d: Tensor = tsne(
                &pair_fe,
                &TsneConfig {
                    iterations: 300,
                    ..TsneConfig::default()
                },
                &mut mix_rng(eng.seed, &["fig6", name]),
            );
            let score = separation_score(&y2d, &pair_y, 2);
            // The paper's Figure 6 claim is about *local structure*: EOS
            // yields a denser, more uniform minority manifold. Lower CV of
            // nearest-neighbour distances = more uniform.
            let cv = density_uniformity(&y2d, &pair_y, 1);
            let mut rows = Rows::new();
            rows.push(vec![
                name.into(),
                cap.to_string(),
                format!("{score:.3}"),
                format!("{cv:.3}"),
            ]);
            for (i, label) in pair_y.iter().enumerate() {
                rows.push(vec![
                    name.into(),
                    label.to_string(),
                    format!("{:.4}", y2d.at(&[i, 0])),
                    format!("{:.4}", y2d.at(&[i, 1])),
                ]);
            }
            Ok(rows)
        }));
    }
    for rows in gather("fig6", &labels, run_jobs(eng.jobs, tasks))? {
        let mut rows = rows.into_iter();
        summary.row(rows.next().expect("cells emit the summary row first"));
        for row in rows {
            coords.row(row);
        }
    }
    println!(
        "\nFigure 6 reproduction — t-SNE of majority/minority pair (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", summary.render());
    write_csv(&summary, "fig6_summary");
    write_csv(&coords, "fig6_coords");
    Ok(())
}
