//! Table I — Pre-processing (pixel-space) vs feature-embedding-space
//! over-sampling, cross-entropy loss.
//!
//! "Pre-" rows oversample raw pixels and train the full CNN on the
//! enlarged set; "Post-" rows use the three-phase framework with the same
//! oversampler applied to feature embeddings. Paper shape: the Post-
//! variant wins in most dataset × method cells (7 of 9); Remix appears
//! only as pre-processing (balancing twice would be double-counting).

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;
use std::sync::Arc;

/// Standard backbones: one CE backbone per dataset (the Post- arm).
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .map(|&d| BackbonePlan::new(d, LossKind::Ce))
        .collect()
}

/// Produces the table. Each pre-processing arm (one full training on its
/// pixel-enlarged set) and each post arm (backbone + head fine-tunes) is
/// an independent journaled cell; rows land in the same order as the
/// serial loop.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&["Dataset", "Descr", "BAC", "GM", "FM"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        // Pre-processing arm: one full training run per oversampler, on
        // the pixel-enlarged set (cached by the enlarged set's content).
        let mut pre: Vec<SamplerSpec> = SamplerSpec::classic_lineup().to_vec();
        pre.push(SamplerSpec::Remix);
        for sampler in pre {
            let pair = Arc::clone(&pair);
            let label = format!("{dataset}/pre-{}", sampler.name());
            labels.push(label.clone());
            tasks.push(eng.cell("table1", label, move || {
                let (train, test) = (&pair.0, &pair.1);
                let spec = ExperimentSpec {
                    table: "table1-pre",
                    dataset,
                    loss: LossKind::Ce,
                    sampler,
                    scale: eng.scale,
                    seed: eng.seed,
                };
                eprintln!("[table1] {dataset} / Pre-{} ...", sampler.name());
                let enlarged = super::oversampled_pixels(train, &spec);
                let mut tp = eng.backbone(&enlarged, LossKind::Ce, &cfg)?;
                let r = tp.baseline_eval(test);
                Ok(vec![vec![
                    dataset.to_string(),
                    format!("Pre-{}", sampler.name()),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                ]])
            }));
        }
        // Post arm: one backbone, one head fine-tune per oversampler.
        let label = format!("{dataset}/post");
        labels.push(label.clone());
        tasks.push(eng.cell("table1", label, move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[table1] {dataset} / Post backbone ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let mut rows = Rows::new();
            for sampler in SamplerSpec::classic_lineup() {
                let spec = ExperimentSpec {
                    table: "table1",
                    dataset,
                    loss: LossKind::Ce,
                    sampler,
                    scale: eng.scale,
                    seed: eng.seed,
                };
                let built = sampler.build().expect("post arm samplers are real");
                let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                rows.push(vec![
                    dataset.to_string(),
                    format!("Post-{}", sampler.name()),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                ]);
            }
            Ok(rows)
        }));
    }
    for rows in gather("table1", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nTable I reproduction — pixel vs embedding-space oversampling (CE, scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table1");
    Ok(())
}
