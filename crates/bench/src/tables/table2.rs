//! Table II — Baseline algorithms & over-sampling accuracy.
//!
//! For every dataset analogue and every loss (CE, ASL, Focal, LDAM):
//! train the backbone once, then compare the end-to-end baseline against
//! head fine-tuning with SMOTE / Borderline-SMOTE / Balanced-SVM / EOS in
//! feature-embedding space. Paper shape: EOS wins most cells; the
//! backbone loss matters (LDAM embeddings are the strongest pairing).

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;
use std::sync::Arc;

/// Standard backbones: every dataset × every loss.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .flat_map(|&d| LossKind::ALL.map(|loss| BackbonePlan::new(d, loss)))
        .collect()
}

/// Produces the table. One journaled cell per dataset × loss group: the
/// group's backbone, its baseline eval and its head fine-tunes.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&["Dataset", "Algo", "Method", "BAC", "GM", "FM"]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        for loss in LossKind::ALL {
            let pair = Arc::clone(&pair);
            let label = format!("{dataset}/{}", loss.name());
            labels.push(label.clone());
            tasks.push(eng.cell("table2", label, move || {
                let (train, test) = (&pair.0, &pair.1);
                eprintln!("[table2] {dataset} / {} ...", loss.name());
                let mut tp = eng.backbone(train, loss, &cfg)?;
                let mut rows = Rows::new();
                let mut push = |method: &str, bac: f64, gm: f64, f1: f64| {
                    rows.push(vec![
                        dataset.to_string(),
                        loss.name().into(),
                        method.into(),
                        paper_fmt(bac),
                        paper_fmt(gm),
                        paper_fmt(f1),
                    ]);
                };
                let base = tp.baseline_eval(test);
                push("Baseline", base.bac, base.gm, base.f1);
                let mut methods: Vec<SamplerSpec> = SamplerSpec::classic_lineup().to_vec();
                methods.push(SamplerSpec::eos(10));
                for sampler in methods {
                    let spec = ExperimentSpec {
                        table: "table2",
                        dataset,
                        loss,
                        sampler,
                        scale: eng.scale,
                        seed: eng.seed,
                    };
                    let built = sampler.build().expect("non-baseline");
                    let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                    push(sampler.name(), r.bac, r.gm, r.f1);
                }
                Ok(rows)
            }));
        }
    }
    for rows in gather("table2", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nTable II reproduction (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "table2");
    Ok(())
}
