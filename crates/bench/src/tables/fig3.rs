//! Figure 3 — Per-class generalization gap, four losses × datasets,
//! baseline vs embedding-space oversamplers vs EOS.
//!
//! Paper shape: the gap rises with class imbalance (class index); the
//! interpolative oversamplers' curves overlap the baseline (they cannot
//! change embedding ranges); only EOS flattens the minority tail. The
//! module also prints the mean-based feature-deviation alternative for
//! the gap-definition ablation.

use crate::exp::{
    run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_core::{feature_deviation, generalization_gap, ThreePhase};
use eos_nn::LossKind;
use eos_resample::balance_with;
use eos_tensor::Tensor;
use std::sync::Arc;

/// Gap per class after augmenting the train embeddings with the cell's
/// sampler ([`SamplerSpec::Baseline`] = no augmentation).
fn gap_with(
    tp: &ThreePhase,
    test_fe: &Tensor,
    test_y: &[usize],
    spec: &ExperimentSpec,
) -> Vec<f64> {
    let (fe, y) = match spec.sampler.build() {
        Some(s) => balance_with(
            s.as_ref(),
            &tp.train_fe,
            &tp.train_y,
            tp.num_classes,
            &mut spec.rng(),
        ),
        None => (tp.train_fe.clone(), tp.train_y.clone()),
    };
    generalization_gap(&fe, &y, test_fe, test_y, tp.num_classes).per_class
}

/// Standard backbones: every dataset × every loss.
pub fn plan(args: &Args) -> Vec<BackbonePlan> {
    args.datasets
        .iter()
        .flat_map(|&d| LossKind::ALL.map(|loss| BackbonePlan::new(d, loss)))
        .collect()
}

/// Produces the figure's CSV. One journaled cell per dataset × loss group.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let mut table = MarkdownTable::new(&[
        "Dataset",
        "Algo",
        "Class",
        "TrainCount",
        "Baseline",
        "SMOTE",
        "EOS",
        "FeatDev",
    ]);
    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for &dataset in &args.datasets {
        let pair = eng.dataset(dataset);
        for loss in LossKind::ALL {
            let pair = Arc::clone(&pair);
            let label = format!("{dataset}/{}", loss.name());
            labels.push(label.clone());
            tasks.push(eng.cell("fig3", label, move || {
                let (train, test) = (&pair.0, &pair.1);
                let counts = train.class_counts();
                eprintln!("[fig3] {dataset} / {} ...", loss.name());
                let mut tp = eng.backbone(train, loss, &cfg)?;
                let test_fe = tp.embed(test);
                let cell = |sampler| ExperimentSpec {
                    table: "fig3",
                    dataset,
                    loss,
                    sampler,
                    scale: eng.scale,
                    seed: eng.seed,
                };
                let base = gap_with(&tp, &test_fe, &test.y, &cell(SamplerSpec::Baseline));
                let smote = gap_with(&tp, &test_fe, &test.y, &cell(SamplerSpec::Smote { k: 5 }));
                let eos = gap_with(&tp, &test_fe, &test.y, &cell(SamplerSpec::eos(10)));
                let dev =
                    feature_deviation(&tp.train_fe, &tp.train_y, &test_fe, &test.y, tp.num_classes)
                        .per_class;
                let mut rows = Rows::new();
                for c in 0..tp.num_classes {
                    rows.push(vec![
                        dataset.to_string(),
                        loss.name().into(),
                        c.to_string(),
                        counts[c].to_string(),
                        format!("{:.3}", base[c]),
                        format!("{:.3}", smote[c]),
                        format!("{:.3}", eos[c]),
                        format!("{:.3}", dev[c]),
                    ]);
                }
                // Summary line: does EOS flatten the minority tail?
                let minority = tp.num_classes / 2..tp.num_classes;
                let tail = |v: &[f64]| -> f64 {
                    minority.clone().map(|c| v[c]).sum::<f64>() / minority.len() as f64
                };
                eprintln!(
                    "  minority-tail gap: baseline {:.3}, SMOTE {:.3}, EOS {:.3}",
                    tail(&base),
                    tail(&smote),
                    tail(&eos)
                );
                Ok(rows)
            }));
        }
    }
    for rows in gather("fig3", &labels, run_jobs(eng.jobs, tasks))? {
        for row in rows {
            table.row(row);
        }
    }
    println!(
        "\nFigure 3 reproduction — per-class generalization gap (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    write_csv(&table, "fig3");
    Ok(())
}
