//! Ablations of the design choices DESIGN.md calls out, beyond the
//! paper's own tables:
//!
//! 1. EOS interpolation direction × coefficient range (the Algorithm 2
//!    pseudocode/prose ambiguity).
//! 2. Range-based generalization gap vs mean-based feature deviation as a
//!    predictor of per-class recall.
//! 3. The decoupling-family alternatives (cRT / τ-norm / NCM) vs
//!    oversampled head fine-tuning.
//! 4. Undersampling vs oversampling the embeddings.
//! 5. Step vs exponential imbalance profiles.

use crate::exp::{
    mix_rng, run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec, SamplerSpec,
};
use crate::report::paper_fmt;
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_core::{
    decoupling_eval, evaluate, feature_deviation, generalization_gap, DecouplingMethod, Direction,
};
use eos_data::{step_profile, subsample_to_profile, SynthSpec};
use eos_nn::{train_epochs, CrossEntropyLoss, Linear, LossKind, TrainConfig};
use eos_resample::RandomUndersampler;
use std::sync::Arc;

/// Standard backbones: cifar10 / CE. (The step-imbalance backbone of §5
/// is derived data; it caches by content inside `run`.)
pub fn plan(_args: &Args) -> Vec<BackbonePlan> {
    vec![BackbonePlan::new("cifar10", LossKind::Ce)]
}

/// Runs all five ablations. Each ablation is one journaled cell that
/// re-acquires the shared backbone from the cache (a hit after the first
/// training — each mutates its own copy's head) and returns
/// pre-formatted rows, so a replayed run prints identical bytes. The
/// cells run serially (`run_jobs(1, ..)`): five live backbone copies at
/// once would dwarf the suite's peak memory for no wall-clock win.
pub fn run(eng: &Engine, args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let pair = eng.dataset("cifar10");
    let (scale, seed) = (eng.scale, eng.seed);
    let spec_of = move |table_tag, sampler| ExperimentSpec {
        table: table_tag,
        dataset: "cifar10",
        loss: LossKind::Ce,
        sampler,
        scale,
        seed,
    };

    let mut labels: Vec<String> = Vec::new();
    let mut tasks: Vec<CellTask<'_>> = Vec::new();

    // --- 1. direction × r-range grid ------------------------------------
    {
        let pair = Arc::clone(&pair);
        labels.push("direction".into());
        tasks.push(eng.cell("ablations", "direction".to_string(), move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[ablations] direction grid ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let mut rows = Rows::new();
            for (dir, name) in [
                (Direction::TowardEnemy, "toward"),
                (Direction::AwayFromEnemy, "away"),
            ] {
                for r_scale in [0.3f32, 0.5, 1.0] {
                    let spec = spec_of(
                        "ablations-dir",
                        SamplerSpec::Eos {
                            k: 10,
                            direction: dir,
                            r_scale,
                        },
                    );
                    let built = spec.sampler.build().expect("EOS");
                    let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                    rows.push(vec![
                        name.into(),
                        format!("[0, {r_scale}]"),
                        paper_fmt(r.bac),
                        paper_fmt(r.gm),
                        paper_fmt(r.f1),
                    ]);
                }
            }
            Ok(rows)
        }));
    }

    // --- 2. gap definition vs per-class recall --------------------------
    {
        let pair = Arc::clone(&pair);
        labels.push("gap".into());
        tasks.push(eng.cell("ablations", "gap".to_string(), move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[ablations] gap definitions ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let base = tp.baseline_eval(test);
            let test_fe = tp.embed(test);
            let range_gap = generalization_gap(&tp.train_fe, &tp.train_y, &test_fe, &test.y, 10);
            let mean_dev = feature_deviation(&tp.train_fe, &tp.train_y, &test_fe, &test.y, 10);
            // Correlate each gap with per-class recall of the baseline
            // model (the untouched end-to-end head).
            let recalls = eos_core::per_class_recall(&test.y, &base.predictions, 10);
            let corr = |gaps: &[f64]| -> f64 {
                let n = gaps.len() as f64;
                let (mg, mr) = (
                    gaps.iter().sum::<f64>() / n,
                    recalls.iter().sum::<f64>() / n,
                );
                let cov: f64 = gaps
                    .iter()
                    .zip(&recalls)
                    .map(|(&g, &r)| (g - mg) * (r - mr))
                    .sum();
                let vg: f64 = gaps.iter().map(|&g| (g - mg) * (g - mg)).sum();
                let vr: f64 = recalls.iter().map(|&r| (r - mr) * (r - mr)).sum();
                cov / (vg.sqrt() * vr.sqrt()).max(1e-12)
            };
            Ok(vec![
                vec![
                    "range-based (Algorithm 1)".into(),
                    format!("{:.3}", corr(&range_gap.per_class)),
                ],
                vec![
                    "mean-based (feature deviation)".into(),
                    format!("{:.3}", corr(&mean_dev.per_class)),
                ],
            ])
        }));
    }

    // --- 3. decoupling methods vs oversampled fine-tuning ----------------
    {
        let pair = Arc::clone(&pair);
        labels.push("decoupling".into());
        tasks.push(eng.cell("ablations", "decoupling".to_string(), move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[ablations] decoupling family ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            // The true end-to-end baseline, before anything replaces the head.
            let base = tp.baseline_eval(test);
            let mut rows = Rows::new();
            rows.push(vec![
                "Baseline (end-to-end)".into(),
                paper_fmt(base.bac),
                paper_fmt(base.gm),
                paper_fmt(base.f1),
            ]);
            let mut dec_rng = mix_rng(eng.seed, &["ablations", "decoupling"]);
            for method in [
                DecouplingMethod::Crt,
                DecouplingMethod::TauNorm(1.0),
                DecouplingMethod::Ncm,
            ] {
                let r = decoupling_eval(&mut tp, method, test, &cfg, &mut dec_rng);
                rows.push(vec![
                    method.name(),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                ]);
            }
            for sampler in [SamplerSpec::Smote { k: 5 }, SamplerSpec::eos(10)] {
                let spec = spec_of("ablations-dec", sampler);
                let built = sampler.build().expect("non-baseline");
                let r = tp.finetune_and_eval(built.as_ref(), test, &cfg, &mut spec.rng());
                rows.push(vec![
                    format!("{} head fine-tune", sampler.name()),
                    paper_fmt(r.bac),
                    paper_fmt(r.gm),
                    paper_fmt(r.f1),
                ]);
            }
            Ok(rows)
        }));
    }

    // --- 4. undersampling the embeddings ---------------------------------
    {
        let pair = Arc::clone(&pair);
        labels.push("undersample".into());
        tasks.push(eng.cell("ablations", "undersample".to_string(), move || {
            let (train, test) = (&pair.0, &pair.1);
            eprintln!("[ablations] undersampled head ...");
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let mut under_rng = mix_rng(eng.seed, &["ablations", "undersample"]);
            let (ux, uy) = RandomUndersampler::to_minority().undersample(
                &tp.train_fe,
                &tp.train_y,
                10,
                &mut under_rng,
            );
            let mut head = Linear::new(tp.net.feature_dim(), 10, true, &mut under_rng);
            let mut ce = CrossEntropyLoss::new();
            let tc = TrainConfig {
                epochs: cfg.head_epochs,
                batch_size: cfg.batch_size,
                lr: cfg.head_lr,
                momentum: cfg.momentum,
                weight_decay: cfg.weight_decay,
                schedule: None,
                drw_epoch: None,
                checkpoint: None,
            };
            let _ = train_epochs(&mut head, &mut ce, &ux, &uy, &tc, None, &mut under_rng);
            tp.net.set_head(head);
            let under = evaluate(&mut tp.net, test);
            Ok(vec![vec![
                uy.len().to_string(),
                tp.train_y.len().to_string(),
                paper_fmt(under.bac),
            ]])
        }));
    }

    // --- 5. step vs exponential imbalance --------------------------------
    {
        labels.push("step".into());
        tasks.push(eng.cell("ablations", "step".to_string(), move || {
            eprintln!("[ablations] step imbalance ...");
            let mut step_rng = mix_rng(eng.seed, &["ablations", "step"]);
            let spec = SynthSpec::cifar10_like(args.scale.data_scale());
            let (balanced_pool, mut step_test) = {
                let mut balanced = spec.clone();
                balanced.imbalance_ratio = 1.0;
                balanced.generate(eng.seed ^ 0x57E9)
            };
            let profile = step_profile(spec.n_max_train, spec.imbalance_ratio, 10, 5);
            let mut step_train = subsample_to_profile(&balanced_pool, &profile, &mut step_rng);
            let (mean, std) = step_train.feature_stats();
            step_train.standardize(&mean, &std);
            step_test.standardize(&mean, &std);
            // A derived dataset: the engine fingerprints it by content, so
            // this backbone caches exactly like the named ones.
            let mut step_tp = eng.backbone(&step_train, LossKind::Ce, &cfg)?;
            let step_base = step_tp.baseline_eval(&step_test);
            let step_spec = spec_of("ablations-step", SamplerSpec::eos(10));
            let built = step_spec.sampler.build().expect("EOS");
            let step_eos =
                step_tp.finetune_and_eval(built.as_ref(), &step_test, &cfg, &mut step_spec.rng());
            Ok(vec![vec![
                spec.imbalance_ratio.to_string(),
                paper_fmt(step_base.bac),
                paper_fmt(step_eos.bac),
            ]])
        }));
    }

    let mut results = gather("ablations", &labels, run_jobs(1, tasks))?;
    let step_row = results.pop().expect("step rows");
    let under_row = results.pop().expect("undersample rows");
    let dec_rows = results.pop().expect("decoupling rows");
    let gap_rows = results.pop().expect("gap rows");
    let dir_rows = results.pop().expect("direction rows");

    let mut dir_table = MarkdownTable::new(&["Direction", "r range", "BAC", "GM", "FM"]);
    for row in dir_rows {
        dir_table.row(row);
    }
    println!("\nAblation 1 — EOS interpolation direction and range\n");
    println!("{}", dir_table.render());
    write_csv(&dir_table, "ablation_direction");

    let mut gap_table = MarkdownTable::new(&["Gap definition", "corr(gap, recall)"]);
    for row in gap_rows {
        gap_table.row(row);
    }
    println!("\nAblation 2 — gap definition as a recall predictor (more negative = better)\n");
    println!("{}", gap_table.render());
    write_csv(&gap_table, "ablation_gap_definition");

    let mut dec_table = MarkdownTable::new(&["Method", "BAC", "GM", "FM"]);
    for row in dec_rows {
        dec_table.row(row);
    }
    println!("\nAblation 3 — decoupling-family repairs vs oversampled fine-tuning\n");
    println!("{}", dec_table.render());
    write_csv(&dec_table, "ablation_decoupling");

    let under = &under_row[0];
    println!(
        "\nAblation 4 — undersampled head ({} samples kept of {}): BAC {}\n",
        under[0], under[1], under[2]
    );

    let step = &step_row[0];
    println!(
        "Ablation 5 — step imbalance (5 majority / 5 minority, ratio {}): baseline BAC {} -> EOS {}\n",
        step[0], step[1], step[2]
    );
    Ok(())
}
