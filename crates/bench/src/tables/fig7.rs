//! Figure 7 — Balanced accuracy vs classifier-retraining epoch, EOS vs
//! SMOTE, cross-entropy on the cifar10 analogue, 30 epochs.
//!
//! Paper shape: both methods plateau by roughly epoch 10 (the framework's
//! chosen budget); EOS gains marginally from longer retraining, SMOTE
//! does not.

use crate::exp::{
    dec_f64, enc_f64, run_jobs, BackbonePlan, CellTask, Engine, EngineError, ExperimentSpec,
    SamplerSpec,
};
use crate::tables::{gather, Rows};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;
use std::sync::Arc;

const EPOCHS: usize = 30;

/// Decodes one journaled BAC value, mapping a malformed bit pattern to a
/// corrupt-cache error (a stale or hand-edited journal entry).
fn dec(s: &str) -> Result<f64, EngineError> {
    dec_f64(s).map_err(|e| EngineError::corrupt("fig7 epoch trace", e.to_string()))
}

/// Standard backbones: cifar10 / CE.
pub fn plan(_args: &Args) -> Vec<BackbonePlan> {
    vec![BackbonePlan::new("cifar10", LossKind::Ce)]
}

/// Produces the figure's CSV. One journaled cell per traced method; each
/// cell takes its own copy of the shared backbone (a cache hit after the
/// first training) because the epoch trace mutates the head in place.
/// The per-epoch BAC pairs journal as f64 bit patterns, so a replayed
/// cell renders the exact same digits as a computed one.
pub fn run(eng: &Engine, _args: &Args) -> Result<(), EngineError> {
    let cfg = eng.cfg();
    let pair = eng.dataset("cifar10");
    let trace_of = |label: &str, sampler: SamplerSpec| {
        let pair = Arc::clone(&pair);
        eng.cell("fig7", label.to_string(), move || {
            let (train, test) = (&pair.0, &pair.1);
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg)?;
            let spec = ExperimentSpec {
                table: "fig7",
                dataset: "cifar10",
                loss: LossKind::Ce,
                sampler,
                scale: eng.scale,
                seed: eng.seed,
            };
            eprintln!("[fig7] tracing {} ...", sampler.name());
            let built = sampler.build().expect("non-baseline");
            let trace = tp.finetune_trace(built.as_ref(), test, EPOCHS, &cfg, &mut spec.rng());
            Ok(trace
                .iter()
                .map(|&(train_bac, test_bac)| vec![enc_f64(train_bac), enc_f64(test_bac)])
                .collect())
        })
    };
    let labels = vec!["smote".to_string(), "eos".to_string()];
    let tasks: Vec<CellTask<'_>> = vec![
        trace_of("smote", SamplerSpec::Smote { k: 5 }),
        trace_of("eos", SamplerSpec::eos(10)),
    ];
    let decode = |rows: &Rows| -> Result<Vec<(f64, f64)>, EngineError> {
        rows.iter()
            .map(|r| Ok((dec(&r[0])?, dec(&r[1])?)))
            .collect()
    };
    let mut traces = gather("fig7", &labels, run_jobs(eng.jobs, tasks))?;
    let eos = decode(&traces.pop().expect("eos trace"))?;
    let smote = decode(&traces.pop().expect("smote trace"))?;
    let mut table = MarkdownTable::new(&[
        "Epoch",
        "SMOTE train BAC",
        "SMOTE test BAC",
        "EOS train BAC",
        "EOS test BAC",
    ]);
    for e in 0..EPOCHS {
        table.row(vec![
            (e + 1).to_string(),
            format!("{:.4}", smote[e].0),
            format!("{:.4}", smote[e].1),
            format!("{:.4}", eos[e].0),
            format!("{:.4}", eos[e].1),
        ]);
    }
    println!(
        "\nFigure 7 reproduction — retraining-epoch trace (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    let at = |trace: &[(f64, f64)], e: usize| trace[e.min(trace.len() - 1)].1;
    println!(
        "plateau check — test BAC at epoch 10 vs 30: SMOTE {:.4} -> {:.4}, EOS {:.4} -> {:.4}",
        at(&smote, 9),
        at(&smote, 29),
        at(&eos, 9),
        at(&eos, 29)
    );
    write_csv(&table, "fig7");
    Ok(())
}
