//! Figure 7 — Balanced accuracy vs classifier-retraining epoch, EOS vs
//! SMOTE, cross-entropy on the cifar10 analogue, 30 epochs.
//!
//! Paper shape: both methods plateau by roughly epoch 10 (the framework's
//! chosen budget); EOS gains marginally from longer retraining, SMOTE
//! does not.

use crate::exp::{run_jobs, BackbonePlan, Engine, ExperimentSpec, SamplerSpec};
use crate::{write_csv, Args, MarkdownTable};
use eos_nn::LossKind;
use std::sync::Arc;

const EPOCHS: usize = 30;

/// Standard backbones: cifar10 / CE.
pub fn plan(_args: &Args) -> Vec<BackbonePlan> {
    vec![BackbonePlan::new("cifar10", LossKind::Ce)]
}

/// Produces the figure's CSV. One job per traced method; each job takes
/// its own copy of the shared backbone (a cache hit after the first
/// training) because the epoch trace mutates the head in place.
pub fn run(eng: &Engine, _args: &Args) {
    let cfg = eng.cfg();
    let pair = eng.dataset("cifar10");
    let trace_of = |sampler: SamplerSpec| {
        let pair = Arc::clone(&pair);
        move || {
            let (train, test) = (&pair.0, &pair.1);
            let mut tp = eng.backbone(train, LossKind::Ce, &cfg);
            let spec = ExperimentSpec {
                table: "fig7",
                dataset: "cifar10",
                loss: LossKind::Ce,
                sampler,
                scale: eng.scale,
                seed: eng.seed,
            };
            eprintln!("[fig7] tracing {} ...", sampler.name());
            let built = sampler.build().expect("non-baseline");
            tp.finetune_trace(built.as_ref(), test, EPOCHS, &cfg, &mut spec.rng())
        }
    };
    let mut traces = run_jobs(
        eng.jobs,
        vec![
            trace_of(SamplerSpec::Smote { k: 5 }),
            trace_of(SamplerSpec::eos(10)),
        ],
    );
    let eos = traces.pop().expect("eos trace");
    let smote = traces.pop().expect("smote trace");
    let mut table = MarkdownTable::new(&[
        "Epoch",
        "SMOTE train BAC",
        "SMOTE test BAC",
        "EOS train BAC",
        "EOS test BAC",
    ]);
    for e in 0..EPOCHS {
        table.row(vec![
            (e + 1).to_string(),
            format!("{:.4}", smote[e].0),
            format!("{:.4}", smote[e].1),
            format!("{:.4}", eos[e].0),
            format!("{:.4}", eos[e].1),
        ]);
    }
    println!(
        "\nFigure 7 reproduction — retraining-epoch trace (scale {:?}, seed {})\n",
        eng.scale, eng.seed
    );
    println!("{}", table.render());
    let at = |trace: &[(f64, f64)], e: usize| trace[e.min(trace.len() - 1)].1;
    println!(
        "plateau check — test BAC at epoch 10 vs 30: SMOTE {:.4} -> {:.4}, EOS {:.4} -> {:.4}",
        at(&smote, 9),
        at(&smote, 29),
        at(&eos, 9),
        at(&eos, 29)
    );
    write_csv(&table, "fig7");
}
