//! Minimal wall-clock micro-benchmark harness.
//!
//! The build environment is offline, so the bench binaries cannot depend on
//! criterion; this module gives them the small subset they actually use:
//! warm-up, a fixed sample count, and mean/min reporting. Bench targets are
//! declared with `harness = false` and call [`bench`] from a plain
//! `fn main()`.

use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

/// Mean/min over a benchmark's samples.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Mean duration across samples.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Number of timed samples (excluding warm-up).
    pub samples: usize,
}

impl BenchStats {
    /// Throughput in GFLOP/s for a kernel that performs `flops` floating
    /// point operations per run, based on the fastest sample.
    pub fn gflops(&self, flops: u64) -> f64 {
        flops as f64 / self.min.as_nanos().max(1) as f64
    }
}

/// Times `f` over `samples` runs (after one warm-up run) and prints a
/// one-line report. Returns the mean duration so callers can build
/// comparison tables.
pub fn bench<T>(name: &str, samples: usize, f: impl FnMut() -> T) -> Duration {
    bench_stats(name, samples, f).mean
}

/// Like [`bench`] but returns the full [`BenchStats`], for callers that
/// report throughput or emit machine-readable results.
pub fn bench_stats<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> BenchStats {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / samples as u32;
    println!(
        "{name:<44} mean {:>10}  min {:>10}  ({samples} samples)",
        format_duration(mean),
        format_duration(min),
    );
    BenchStats { mean, min, samples }
}

/// A flat, ordered JSON object rendered by hand (the build is offline, so
/// no serde). Values are appended pre-typed; [`JsonRecord::render`] emits
/// one pretty-printed object.
#[derive(Default)]
pub struct JsonRecord {
    fields: Vec<(String, String)>,
}

impl JsonRecord {
    /// Empty record.
    pub fn new() -> Self {
        JsonRecord::default()
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        let escaped: String = value
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                '\n' => vec!['\\', 'n'],
                _ => vec![c],
            })
            .collect();
        self.fields
            .push((key.to_string(), format!("\"{escaped}\"")));
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends a float field (fixed 4-decimal form, valid JSON).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        assert!(value.is_finite(), "JSON cannot carry NaN/inf ({key})");
        self.fields.push((key.to_string(), format!("{value:.4}")));
        self
    }

    /// Renders the object with one field per line.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            let comma = if i + 1 < self.fields.len() { "," } else { "" };
            let _ = writeln!(out, "  \"{k}\": {v}{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Writes the record to `results/<name>.json`, creating the directory.
    pub fn write(&self, name: &str) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        let path = dir.join(format!("{name}.json"));
        match std::fs::write(&path, self.render()) {
            Ok(()) => println!("[json written to {}]", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }
}

/// Human-readable duration: `1.234 ms`, `56.7 µs`, `2.345 s`.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_positive_mean() {
        let mean = bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn gflops_counts_operations_per_nanosecond() {
        let s = BenchStats {
            mean: Duration::from_micros(2),
            min: Duration::from_micros(1),
            samples: 5,
        };
        // 2000 flops in 1000 ns = 2 flops/ns = 2 GFLOP/s.
        assert!((s.gflops(2000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn json_record_renders_valid_flat_object() {
        let mut r = JsonRecord::new();
        r.str("bench", "gemm \"256\"")
            .int("threads", 8)
            .num("gflops", 1.25);
        let s = r.render();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"bench\": \"gemm \\\"256\\\"\","));
        assert!(s.contains("\"threads\": 8,"));
        assert!(s.contains("\"gflops\": 1.2500\n"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
