//! Minimal wall-clock micro-benchmark harness.
//!
//! The build environment is offline, so the bench binaries cannot depend on
//! criterion; this module gives them the small subset they actually use:
//! warm-up, a fixed sample count, and mean/min reporting. Bench targets are
//! declared with `harness = false` and call [`bench`] from a plain
//! `fn main()`.

use std::time::{Duration, Instant};

/// Times `f` over `samples` runs (after one warm-up run) and prints a
/// one-line report. Returns the mean duration so callers can build
/// comparison tables.
pub fn bench<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> Duration {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let mean = total / samples as u32;
    println!(
        "{name:<44} mean {:>10}  min {:>10}  ({samples} samples)",
        format_duration(mean),
        format_duration(min),
    );
    mean
}

/// Human-readable duration: `1.234 ms`, `56.7 µs`, `2.345 s`.
pub fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_positive_mean() {
        let mean = bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
