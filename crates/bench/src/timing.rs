//! Minimal wall-clock micro-benchmark harness.
//!
//! The build environment is offline, so the bench binaries cannot depend on
//! criterion; this module gives them the small subset they actually use:
//! warm-up, a fixed sample count, and mean/min reporting. Bench targets are
//! declared with `harness = false` and call [`bench`] from a plain
//! `fn main()`.
//!
//! JSON rendering and duration formatting come from `eos-trace` (re-exported
//! below), so `results/BENCH_*.json` and `results/TRACE_*.json` share one
//! writer and cannot drift apart in format. Every timed sample is also fed
//! into the trace histogram `bench.sample_ns`, putting bench measurements
//! and trace spans in the same registry.

use std::time::{Duration, Instant};

pub use eos_trace::{format_duration, JsonRecord};

/// Mean/min over a benchmark's samples.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Mean duration across samples.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Number of timed samples (excluding warm-up).
    pub samples: usize,
}

impl BenchStats {
    /// Throughput in GFLOP/s for a kernel that performs `flops` floating
    /// point operations per run, based on the fastest sample.
    pub fn gflops(&self, flops: u64) -> f64 {
        flops as f64 / self.min.as_nanos().max(1) as f64
    }
}

/// The `p`-th percentile (0–100) of a set of latency samples, by the
/// nearest-rank method on a sorted copy. Serving benchmarks report p50
/// and p99 tails with this; means hide exactly the stalls a batching
/// queue can introduce.
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    assert!(!samples.is_empty(), "percentile of an empty sample set");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    // Nearest-rank: the smallest sample ≥ p% of the distribution.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1)]
}

/// Times `f` over `samples` runs (after one warm-up run) and prints a
/// one-line report. Returns the mean duration so callers can build
/// comparison tables.
pub fn bench<T>(name: &str, samples: usize, f: impl FnMut() -> T) -> Duration {
    bench_stats(name, samples, f).mean
}

/// Like [`bench`] but returns the full [`BenchStats`], for callers that
/// report throughput or emit machine-readable results.
pub fn bench_stats<T>(name: &str, samples: usize, mut f: impl FnMut() -> T) -> BenchStats {
    assert!(samples > 0, "need at least one sample");
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        eos_trace::hist!("bench.sample_ns", dt.as_nanos() as u64);
        total += dt;
        min = min.min(dt);
    }
    let mean = total / samples as u32;
    println!(
        "{name:<44} mean {:>10}  min {:>10}  ({samples} samples)",
        format_duration(mean),
        format_duration(min),
    );
    BenchStats { mean, min, samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_positive_mean() {
        let mean = bench("spin", 3, || (0..1000u64).sum::<u64>());
        assert!(mean > Duration::ZERO);
    }

    #[test]
    fn gflops_counts_operations_per_nanosecond() {
        let s = BenchStats {
            mean: Duration::from_micros(2),
            min: Duration::from_micros(1),
            samples: 5,
        };
        // 2000 flops in 1000 ns = 2 flops/ns = 2 GFLOP/s.
        assert!((s.gflops(2000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn json_record_is_the_trace_renderer() {
        // The re-export must behave exactly like the old local copy (and
        // its output now also passes the trace crate's JSON validator).
        let mut r = JsonRecord::new();
        r.str("bench", "gemm \"256\"")
            .int("threads", 8)
            .num("gflops", 1.25);
        let s = r.render();
        assert!(s.contains("\"bench\": \"gemm \\\"256\\\"\","));
        assert!(s.contains("\"gflops\": 1.2500\n"));
        eos_trace::validate(&s).expect("BENCH records must be valid JSON");
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&samples, 50.0), Duration::from_millis(50));
        assert_eq!(percentile(&samples, 99.0), Duration::from_millis(99));
        assert_eq!(percentile(&samples, 100.0), Duration::from_millis(100));
        assert_eq!(percentile(&samples, 0.0), Duration::from_millis(1));
        // Order of arrival must not matter.
        let mut shuffled = samples.clone();
        shuffled.reverse();
        assert_eq!(percentile(&shuffled, 99.0), Duration::from_millis(99));
        // A single sample is every percentile.
        assert_eq!(
            percentile(&[Duration::from_micros(7)], 50.0),
            Duration::from_micros(7)
        );
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
