//! CLI arguments shared by all experiment binaries.

use eos_core::Scale;
use eos_data::DATASET_NAMES;

/// The flags every experiment binary accepts, in usage order.
const FLAGS: [&str; 9] = [
    "--scale",
    "--seed",
    "--datasets",
    "--no-cache",
    "--jobs",
    "--skip-runtime",
    "--bench",
    "--cache-gc",
    "--cache-cap",
];

/// Parsed command line:
/// `--scale smoke|small|medium --seed N --datasets a,b --no-cache
/// --jobs J --skip-runtime --bench --cache-gc --cache-cap BYTES`.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Dataset analogues to run (defaults to all four).
    pub datasets: Vec<&'static str>,
    /// Skip the on-disk artifact cache: train every backbone fresh and
    /// store nothing.
    pub no_cache: bool,
    /// Outer job-level parallelism: how many backbone trainings /
    /// experiment cells run concurrently (each gets `threads / jobs` of
    /// the `EOS_NUM_THREADS` budget for its inner ops). 1 is serial.
    pub jobs: usize,
    /// Skip the runtime table (its stdout prints wall-clock timings, so
    /// the byte-identity gates exclude it).
    pub skip_runtime: bool,
    /// Suite only: run the deterministic pipeline serially and at
    /// `--jobs`, compare outputs, and write `results/BENCH_suite.json`.
    pub bench: bool,
    /// Suite only: sweep the cache directory (orphans, stale locks,
    /// corrupt entries) and exit.
    pub cache_gc: bool,
    /// With `--cache-gc`: evict oldest entries until the cache fits
    /// under this many bytes.
    pub cache_cap: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Small,
            seed: 42,
            datasets: DATASET_NAMES.to_vec(),
            no_cache: false,
            jobs: 1,
            skip_runtime: false,
            bench: false,
            cache_gc: false,
            cache_cap: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn parse() -> Args {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: <bin> [--scale {}] [--seed N] [--datasets {}] [--no-cache] \
                     [--jobs J] [--skip-runtime] [--bench] [--cache-gc] [--cache-cap BYTES]",
                    Scale::NAMES.join("|"),
                    DATASET_NAMES.join(",")
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument iterator (testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale = Scale::parse(&v).ok_or_else(|| {
                        format!("unknown scale '{v}' (choices: {})", Scale::NAMES.join(", "))
                    })?;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                }
                "--datasets" => {
                    let v = value("--datasets")?;
                    let mut names = Vec::new();
                    for part in v.split(',') {
                        let canonical =
                            DATASET_NAMES.iter().find(|&&n| n == part).ok_or_else(|| {
                                format!(
                                    "unknown dataset '{part}' (choices: {})",
                                    DATASET_NAMES.join(", ")
                                )
                            })?;
                        names.push(*canonical);
                    }
                    if names.is_empty() {
                        return Err("--datasets needs at least one name".into());
                    }
                    out.datasets = names;
                }
                "--no-cache" => out.no_cache = true,
                "--jobs" => {
                    let v = value("--jobs")?;
                    let n: usize = v.parse().map_err(|_| format!("bad job count '{v}'"))?;
                    if n == 0 {
                        return Err("--jobs needs at least 1".into());
                    }
                    out.jobs = n;
                }
                "--skip-runtime" => out.skip_runtime = true,
                "--bench" => out.bench = true,
                "--cache-gc" => out.cache_gc = true,
                "--cache-cap" => {
                    let v = value("--cache-cap")?;
                    out.cache_cap = Some(v.parse().map_err(|_| format!("bad byte cap '{v}'"))?);
                }
                other => {
                    return Err(format!(
                        "unknown flag '{other}' (expected one of: {})",
                        FLAGS.join(", ")
                    ))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = Args::try_parse(strings(&[])).unwrap();
        assert_eq!(a.seed, 42);
        assert_eq!(a.datasets.len(), 4);
        assert_eq!(a.scale, Scale::Small);
        assert!(!a.no_cache);
    }

    #[test]
    fn full_flags() {
        let a = Args::try_parse(strings(&[
            "--scale",
            "medium",
            "--seed",
            "7",
            "--datasets",
            "svhn,celeba",
            "--no-cache",
        ]))
        .unwrap();
        assert_eq!(a.scale, Scale::Medium);
        assert_eq!(a.seed, 7);
        assert_eq!(a.datasets, vec!["svhn", "celeba"]);
        assert!(a.no_cache);
    }

    #[test]
    fn smoke_scale_parses() {
        let a = Args::try_parse(strings(&["--scale", "smoke"])).unwrap();
        assert_eq!(a.scale, Scale::Smoke);
    }

    #[test]
    fn rejects_unknown_dataset_listing_choices() {
        let e = Args::try_parse(strings(&["--datasets", "mnist"])).unwrap_err();
        assert!(e.contains("mnist"));
        for name in DATASET_NAMES {
            assert!(e.contains(name), "choices missing {name}: {e}");
        }
    }

    #[test]
    fn rejects_unknown_scale_listing_choices() {
        let e = Args::try_parse(strings(&["--scale", "huge"])).unwrap_err();
        assert!(e.contains("huge") && e.contains("smoke") && e.contains("medium"));
    }

    #[test]
    fn rejects_unknown_flag_listing_flags() {
        let e = Args::try_parse(strings(&["--fast"])).unwrap_err();
        assert!(e.contains("--fast"));
        for flag in FLAGS {
            assert!(e.contains(flag), "flag list missing {flag}: {e}");
        }
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::try_parse(strings(&["--seed"])).is_err());
    }

    #[test]
    fn parallel_and_cache_flags() {
        let a = Args::try_parse(strings(&[
            "--jobs",
            "4",
            "--skip-runtime",
            "--bench",
            "--cache-gc",
            "--cache-cap",
            "1048576",
        ]))
        .unwrap();
        assert_eq!(a.jobs, 4);
        assert!(a.skip_runtime && a.bench && a.cache_gc);
        assert_eq!(a.cache_cap, Some(1_048_576));
    }

    #[test]
    fn rejects_zero_or_garbage_jobs() {
        assert!(Args::try_parse(strings(&["--jobs", "0"])).is_err());
        assert!(Args::try_parse(strings(&["--jobs", "many"])).is_err());
        assert!(Args::try_parse(strings(&["--cache-cap", "big"])).is_err());
    }
}
