//! CLI arguments shared by all experiment binaries.

use eos_core::Scale;
use eos_data::DATASET_NAMES;

/// Parsed command line: `--scale small|medium --seed N --datasets a,b`.
#[derive(Debug, Clone)]
pub struct Args {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Dataset analogues to run (defaults to all four).
    pub datasets: Vec<&'static str>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: Scale::Small,
            seed: 42,
            datasets: DATASET_NAMES.to_vec(),
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn parse() -> Args {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!(
                    "usage: <bin> [--scale small|medium] [--seed N] [--datasets cifar10,svhn,cifar100,celeba]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument iterator (testable).
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    out.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale '{v}'"))?;
                }
                "--seed" => {
                    let v = value("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
                }
                "--datasets" => {
                    let v = value("--datasets")?;
                    let mut names = Vec::new();
                    for part in v.split(',') {
                        let canonical = DATASET_NAMES
                            .iter()
                            .find(|&&n| n == part)
                            .ok_or_else(|| format!("unknown dataset '{part}'"))?;
                        names.push(*canonical);
                    }
                    if names.is_empty() {
                        return Err("--datasets needs at least one name".into());
                    }
                    out.datasets = names;
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = Args::try_parse(strings(&[])).unwrap();
        assert_eq!(a.seed, 42);
        assert_eq!(a.datasets.len(), 4);
        assert_eq!(a.scale, Scale::Small);
    }

    #[test]
    fn full_flags() {
        let a = Args::try_parse(strings(&[
            "--scale",
            "medium",
            "--seed",
            "7",
            "--datasets",
            "svhn,celeba",
        ]))
        .unwrap();
        assert_eq!(a.scale, Scale::Medium);
        assert_eq!(a.seed, 7);
        assert_eq!(a.datasets, vec!["svhn", "celeba"]);
    }

    #[test]
    fn rejects_unknown_dataset() {
        assert!(Args::try_parse(strings(&["--datasets", "mnist"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(Args::try_parse(strings(&["--fast"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::try_parse(strings(&["--seed"])).is_err());
    }
}
