//! # eos-repro
//!
//! Facade crate for the Rust reproduction of *Efficient Augmentation for
//! Imbalanced Deep Learning* (Dablain, Krawczyk, Bellinger, Chawla — ICDE
//! 2023). Re-exports the workspace crates under one roof so examples and
//! integration tests can use a single dependency.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use eos_core as core;
pub use eos_data as data;
pub use eos_gan as gan;
pub use eos_neighbors as neighbors;
pub use eos_nn as nn;
pub use eos_resample as resample;
pub use eos_serve as serve;
pub use eos_tensor as tensor;
pub use eos_trace as trace;
pub use eos_tsne as tsne;
