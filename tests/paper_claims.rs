//! Integration tests pinning the paper's qualitative claims at miniature
//! scale. Each test is a shrunken version of one of the evaluation's
//! findings; the benches reproduce the same shapes at experiment scale.

use eos_repro::core::{evaluate, generalization_gap, tp_fp_gap, Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::nn::LossKind;
use eos_repro::resample::{balance_with, Oversampler, Smote};
use eos_repro::tensor::Rng64;

fn trained_pipeline(seed: u64) -> (ThreePhase, eos_repro::data::Dataset) {
    let mut spec = SynthSpec::cifar10_like(1);
    spec.n_max_train = 200;
    spec.n_test_per_class = 40;
    let (mut train, mut test) = spec.generate(seed);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    let mut cfg = PipelineConfig::small();
    cfg.backbone_epochs = 8;
    let mut rng = Rng64::new(seed);
    let tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    (tp, test)
}

/// RQ1 / Figure 3: the gap grows toward the minority classes.
#[test]
fn minority_classes_have_wider_generalization_gap() {
    let (mut tp, test) = trained_pipeline(1);
    let test_fe = tp.embed(&test);
    let gap = generalization_gap(&tp.train_fe, &tp.train_y, &test_fe, &test.y, 10);
    let majority: f64 = gap.per_class[..3].iter().sum::<f64>() / 3.0;
    let minority: f64 = gap.per_class[7..].iter().sum::<f64>() / 3.0;
    assert!(
        minority > 1.5 * majority,
        "minority gap {minority:.2} should dwarf majority gap {majority:.2}"
    );
}

/// Figure 3's overlapping curves: SMOTE cannot change the gap at all
/// (interpolation stays inside per-feature ranges), EOS reduces it.
#[test]
fn smote_leaves_gap_unchanged_eos_reduces_it() {
    let (mut tp, test) = trained_pipeline(2);
    let test_fe = tp.embed(&test);
    let mut rng = Rng64::new(0);
    let base = generalization_gap(&tp.train_fe, &tp.train_y, &test_fe, &test.y, 10);
    let (sx, sy) = balance_with(&Smote::new(5), &tp.train_fe, &tp.train_y, 10, &mut rng);
    let smote = generalization_gap(&sx, &sy, &test_fe, &test.y, 10);
    let (ex, ey) = balance_with(&Eos::new(10), &tp.train_fe, &tp.train_y, 10, &mut rng);
    let eos = generalization_gap(&ex, &ey, &test_fe, &test.y, 10);
    assert!(
        (smote.mean - base.mean).abs() < 1e-6,
        "SMOTE gap {} must equal baseline {}",
        smote.mean,
        base.mean
    );
    assert!(
        eos.mean < base.mean * 0.95,
        "EOS gap {} should be below baseline {}",
        eos.mean,
        base.mean
    );
}

/// RQ1 / Figure 4: misclassified test samples sit outside their class's
/// training footprint far more than correct ones.
#[test]
fn false_positives_have_larger_gap_than_true_positives() {
    let (mut tp, test) = trained_pipeline(3);
    let test_fe = tp.embed(&test);
    let preds = evaluate(&mut tp.net, &test).predictions;
    let r = tp_fp_gap(&tp.train_fe, &tp.train_y, &test_fe, &test.y, &preds, 10);
    assert!(
        r.fp_gap > 2.0 * r.tp_gap,
        "FP gap {:.3} should be ≥2x TP gap {:.3}",
        r.fp_gap,
        r.tp_gap
    );
}

/// §V-C: EOS expands per-class embedding ranges; interpolative methods do
/// not — measured on the actual trained embeddings.
#[test]
fn eos_expands_embedding_ranges_smote_does_not() {
    let (tp, _test) = trained_pipeline(4);
    let mut rng = Rng64::new(1);
    let minority: Vec<usize> = tp
        .train_y
        .iter()
        .enumerate()
        .filter_map(|(i, &y)| (y == 9).then_some(i))
        .collect();
    let before = tp.train_fe.select_rows(&minority);
    let span_before: f32 = before.max_rows().sub(&before.min_rows()).sum();

    let span_after = |sampler: &dyn Oversampler, rng: &mut Rng64| -> f32 {
        let (bx, by) = balance_with(sampler, &tp.train_fe, &tp.train_y, 10, rng);
        let rows: Vec<usize> = by
            .iter()
            .enumerate()
            .filter_map(|(i, &y)| (y == 9).then_some(i))
            .collect();
        let m = bx.select_rows(&rows);
        m.max_rows().sub(&m.min_rows()).sum()
    };
    let smote_span = span_after(&Smote::new(5), &mut rng);
    let eos_span = span_after(&Eos::new(10), &mut rng);
    assert!(
        (smote_span - span_before).abs() < 1e-3,
        "SMOTE span {smote_span} vs before {span_before}"
    );
    assert!(
        eos_span > span_before * 1.05,
        "EOS span {eos_span} should exceed {span_before}"
    );
}

/// RQ2 (Table II direction): oversampling the embeddings then fine-tuning
/// the head beats the end-to-end baseline.
#[test]
fn embedding_oversampling_beats_baseline() {
    let (mut tp, test) = trained_pipeline(5);
    let cfg = PipelineConfig::small();
    let base = tp.baseline_eval(&test);
    let mut rng = Rng64::new(2);
    let eos = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    assert!(
        eos.bac > base.bac,
        "EOS {:.4} should beat baseline {:.4}",
        eos.bac,
        base.bac
    );
}
