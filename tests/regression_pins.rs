//! Reproducibility pins: exact metric values for fixed seeds.
//!
//! The workspace owns its RNG (`Rng64`), so every pipeline is a pure
//! function of its seeds. These tests pin the quickstart scenario's
//! numbers — the same ones quoted in README.md — so that any change to
//! the algorithms, the generator, or the training loop that would alter
//! published results fails loudly here. Update the constants (and the
//! README) deliberately when the change is intentional.

use eos_repro::core::{Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::nn::LossKind;
use eos_repro::tensor::Rng64;

#[test]
fn quickstart_scenario_reproduces_readme_numbers() {
    let spec = SynthSpec::celeba_like(1);
    let (mut train, mut test) = spec.generate(7);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    assert_eq!(train.len(), 657);
    assert_eq!(train.class_counts(), vec![400, 159, 63, 25, 10]);

    let cfg = PipelineConfig::small();
    let mut rng = Rng64::new(0);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let base = tp.baseline_eval(&test);
    let eos = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    assert!(
        (base.bac - 0.688).abs() < 1e-9,
        "baseline BAC drifted: {} (README quotes 0.6880)",
        base.bac
    );
    assert!(
        (eos.bac - 0.7626666666666667).abs() < 1e-9,
        "EOS BAC drifted: {} (README quotes 0.7627)",
        eos.bac
    );
}

#[test]
fn dataset_generation_is_pinned() {
    // The first pixel of the cifar10 analogue at seed 42 — a canary for
    // any change in the generator's RNG consumption order.
    let (train, _) = SynthSpec::cifar10_like(1).generate(42);
    let first = train.x.at(&[0, 0]);
    let expected = first; // self-consistency within this run
    let (train2, _) = SynthSpec::cifar10_like(1).generate(42);
    assert_eq!(train2.x.at(&[0, 0]), expected);
    // Cross-run stability: value pinned at authorship time.
    assert!(
        (first - 0.308_886_05).abs() < 1e-4,
        "generator output drifted: first pixel {first}"
    );
}
