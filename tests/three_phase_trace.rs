//! End-to-end traced run of the three-phase pipeline: the trace must show
//! exactly three phase spans with plausible nesting, the phase-2 set must
//! come out balanced with minority feature ranges only ever growing, and
//! the whole pipeline must be byte-identical on rerun — with tracing
//! enabled or disabled, proving observation never perturbs computation.

use eos_repro::core::{Eos, PipelineConfig, ThreePhase};
use eos_repro::data::{Dataset, SynthSpec};
use eos_repro::nn::{Architecture, LossKind};
use eos_repro::resample::{balance_with, class_counts, indices_by_class};
use eos_repro::tensor::Rng64;
use eos_repro::trace;
use std::sync::Mutex;

/// The trace registry is process-global; tests that reset and assert on
/// it must not interleave.
static LOCK: Mutex<()> = Mutex::new(());

fn tiny_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::small();
    cfg.arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 4,
    };
    cfg.backbone_epochs = 4;
    cfg.head_epochs = 3;
    cfg
}

fn tiny_data() -> (Dataset, Dataset) {
    let mut spec = SynthSpec::celeba_like(1);
    spec.n_max_train = 32;
    spec.imbalance_ratio = 8.0;
    spec.n_test_per_class = 8;
    let (mut train, mut test) = spec.generate(11);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    (train, test)
}

/// Runs phase 1-3 end to end and returns the pipeline plus its test-set
/// predictions. Deterministic given the fixed seeds inside.
fn run_pipeline(train: &Dataset, test: &Dataset) -> (ThreePhase, Vec<usize>) {
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(1);
    let mut tp = ThreePhase::train(train, LossKind::Ce, &cfg, &mut rng);
    let r = tp.finetune_and_eval(&Eos::new(10), test, &cfg, &mut rng);
    (tp, r.predictions)
}

/// Pulls `"key": <u64>` out of one JSONL event line.
fn field(line: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\": ");
    let rest = &line[line.find(&tag).expect("field present") + tag.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn traced_run_emits_three_nested_phases() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::reset();
    trace::set_enabled(true);
    let (train, test) = tiny_data();
    let (tp, predictions) = run_pipeline(&train, &test);
    let snap = trace::snapshot();
    let events = trace::events_jsonl();
    trace::set_enabled(false);

    // Losses stay finite and the run actually predicted something.
    assert!(tp.history.iter().all(|e| e.loss.is_finite()));
    assert_eq!(predictions.len(), test.len());

    // Exactly the three phase spans at the root, each once (phase 2 spans
    // both embedding extraction and augmentation, aggregating to count 2).
    let mut roots: Vec<&str> = snap.root_spans().iter().map(|s| s.name.as_str()).collect();
    roots.sort_unstable();
    assert_eq!(roots, ["eos.phase1", "eos.phase2", "eos.phase3"]);
    let span_count = |p: &str| snap.span(p).map_or(0, |s| s.count);
    assert_eq!(span_count("eos.phase1"), 1);
    assert_eq!(span_count("eos.phase2"), 2);
    assert_eq!(span_count("eos.phase3"), 1);
    assert_eq!(
        span_count("eos.phase1/train.epoch"),
        tiny_cfg().backbone_epochs as u64
    );
    assert_eq!(
        span_count("eos.phase3/train.epoch"),
        tiny_cfg().head_epochs as u64
    );
    assert!(span_count("eos.phase1/train.epoch/train.batch") > 0);
    assert_eq!(span_count("eos.phase2/eos.oversample"), 1);

    // Aggregated child time cannot exceed its parent's.
    let phase1 = snap.span("eos.phase1").unwrap();
    let epochs = snap.span("eos.phase1/train.epoch").unwrap();
    assert!(phase1.total_ns >= epochs.total_ns);

    // Event-level nesting: every epoch completion falls inside the one
    // phase-1 window.
    let phase1_line = events
        .lines()
        .find(|l| l.contains("\"eos.phase1\""))
        .expect("phase-1 event");
    let (p_start, p_end) = (
        field(phase1_line, "start_ns"),
        field(phase1_line, "start_ns") + field(phase1_line, "dur_ns"),
    );
    let mut epoch_events = 0;
    for line in events
        .lines()
        .filter(|l| l.contains("\"eos.phase1/train.epoch\""))
    {
        let start = field(line, "start_ns");
        assert!(start >= p_start, "epoch starts before its phase");
        assert!(
            start + field(line, "dur_ns") <= p_end,
            "epoch ends after its phase"
        );
        epoch_events += 1;
    }
    assert_eq!(epoch_events, tiny_cfg().backbone_epochs);
}

#[test]
fn phase_two_balances_and_only_expands_minority_ranges() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    trace::set_enabled(false);
    let (train, test) = tiny_data();
    let (tp, _) = run_pipeline(&train, &test);

    let eos = Eos::new(10);
    let (bx, by) = balance_with(
        &eos,
        &tp.train_fe,
        &tp.train_y,
        tp.num_classes,
        &mut Rng64::new(2),
    );
    let counts = class_counts(&by, tp.num_classes);
    let max = counts.iter().copied().max().unwrap();
    assert!(
        counts.iter().all(|&c| c == max),
        "phase-2 set not balanced: {counts:?}"
    );

    // Originals are a prefix of the balanced set, so each class's
    // per-feature range in embedding space can only stay or widen — the
    // minority "generalization gap" (range deficit) never increases.
    let before = indices_by_class(&tp.train_y, tp.num_classes);
    let after = indices_by_class(&by, tp.num_classes);
    for class in 0..tp.num_classes {
        let orig = tp.train_fe.select_rows(&before[class]);
        let bal = bx.select_rows(&after[class]);
        let (olo, ohi) = (orig.min_rows(), orig.max_rows());
        let (blo, bhi) = (bal.min_rows(), bal.max_rows());
        for j in 0..tp.train_fe.dim(1) {
            assert!(
                blo.data()[j] <= olo.data()[j] && bhi.data()[j] >= ohi.data()[j],
                "class {class} feature {j} range shrank"
            );
        }
    }
}

#[test]
fn rerun_is_byte_identical_with_or_without_tracing() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (train, test) = tiny_data();

    trace::reset();
    trace::set_enabled(true);
    let (tp_traced, preds_traced) = run_pipeline(&train, &test);
    trace::set_enabled(false);
    trace::reset();
    let (tp_plain, preds_plain) = run_pipeline(&train, &test);

    let bits =
        |t: &eos_repro::tensor::Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&tp_traced.train_fe),
        bits(&tp_plain.train_fe),
        "embeddings drifted between traced and untraced runs"
    );
    assert_eq!(
        preds_traced, preds_plain,
        "predictions drifted between traced and untraced runs"
    );
}
