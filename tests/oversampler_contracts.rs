//! Contracts every oversampler in the workspace must satisfy, checked over
//! deterministically generated imbalanced inputs (seeded-RNG loops; the
//! build environment is offline, so no proptest).

use eos_repro::core::Eos;
use eos_repro::gan::{BaganLite, CGan, DeepSmote, GamoLite, GanConfig};
use eos_repro::resample::{
    balance_with, class_counts, Adasyn, BalancedSvm, BorderlineSmote, KMeansSmote, Oversampler,
    RandomOversampler, Remix, Smote,
};
use eos_repro::tensor::{Rng64, Tensor};

const CASES: u64 = 8;

/// Random imbalanced labelled matrix: 2–4 classes, skewed counts, 3–6
/// features.
fn imbalanced_input(seed: u64) -> (Tensor, Vec<usize>, usize) {
    let mut rng = Rng64::new(seed);
    let classes = 2 + rng.below(3);
    let width = 3 + rng.below(4);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for c in 0..classes {
        let n = 12 / (c + 1) + 2; // skewed: 14, 8, 6, 5
        for _ in 0..n {
            let row: Vec<f32> = (0..width)
                .map(|_| rng.normal_f32(c as f32 * 2.0, 0.7))
                .collect();
            rows.push(Tensor::from_vec(row, &[width]));
            labels.push(c);
        }
    }
    (Tensor::stack_rows(&rows), labels, classes)
}

fn all_samplers() -> Vec<Box<dyn Oversampler>> {
    vec![
        Box::new(RandomOversampler),
        Box::new(Smote::new(5)),
        Box::new(BorderlineSmote::new(5, 5)),
        Box::new(Adasyn::new(5)),
        Box::new(KMeansSmote::new(2, 3)),
        Box::new(Remix::new()),
        Box::new(Eos::new(5)),
        Box::new(GamoLite {
            cfg: GanConfig::tiny(),
            max_anchors: 16,
        }),
        Box::new(BaganLite::fast()),
        Box::new(DeepSmote::fast()),
        Box::new(CGan {
            cfg: GanConfig::tiny(),
        }),
    ]
}

/// Balancing must equalise class counts exactly (Balanced-SVM is the
/// sanctioned exception: it relabels synthetics by SVM prediction).
#[test]
fn balancing_equalises_counts() {
    for seed in 0..CASES {
        let (x, y, classes) = imbalanced_input(seed);
        for sampler in all_samplers() {
            let mut rng = Rng64::new(7);
            let (bx, by) = balance_with(sampler.as_ref(), &x, &y, classes, &mut rng);
            let counts = class_counts(&by, classes);
            let max = *counts.iter().max().unwrap();
            assert!(
                counts.iter().all(|&c| c == max),
                "{} left counts {counts:?}",
                sampler.name()
            );
            assert_eq!(bx.dim(0), by.len());
            assert_eq!(bx.dim(1), x.dim(1));
        }
    }
}

/// Synthetic rows must be finite and originals must be preserved as a
/// prefix of the balanced output.
#[test]
fn originals_preserved_and_values_finite() {
    for seed in 0..CASES {
        let (x, y, classes) = imbalanced_input(seed);
        for sampler in all_samplers() {
            let mut rng = Rng64::new(11);
            let (bx, by) = balance_with(sampler.as_ref(), &x, &y, classes, &mut rng);
            assert!(
                bx.all_finite(),
                "{} produced non-finite values",
                sampler.name()
            );
            assert_eq!(&by[..y.len()], &y[..], "labels reordered");
            for i in 0..x.dim(0) {
                assert_eq!(bx.row_slice(i), x.row_slice(i), "rows reordered");
            }
        }
    }
}

/// Balanced-SVM keeps the count contract on the *generated* rows and
/// produces labels within range (its labels may legitimately differ).
#[test]
fn balanced_svm_labels_in_range() {
    for seed in 0..CASES {
        let (x, y, classes) = imbalanced_input(seed);
        let mut rng = Rng64::new(13);
        let (sx, sy) = BalancedSvm::new(3).oversample(&x, &y, classes, &mut rng);
        assert!(sy.iter().all(|&l| l < classes));
        assert!(sx.all_finite());
    }
}

/// Oversampling is deterministic given the RNG seed.
#[test]
fn oversampling_is_deterministic() {
    for seed in 0..CASES {
        let (x, y, classes) = imbalanced_input(seed);
        for sampler in all_samplers() {
            let (a, la) = sampler.oversample(&x, &y, classes, &mut Rng64::new(3));
            let (b, lb) = sampler.oversample(&x, &y, classes, &mut Rng64::new(3));
            assert_eq!(a.data(), b.data(), "{} nondeterministic", sampler.name());
            assert_eq!(la, lb);
        }
    }
}
