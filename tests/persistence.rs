//! Cross-crate persistence test: train phase one, serialize the backbone,
//! reload it in a "fresh process" (new network object), and verify that
//! embeddings — and therefore every downstream phase — are bit-identical.

use eos_repro::core::{Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::nn::{load_weights, save_weights, Architecture, ConvNet, LossKind};
use eos_repro::tensor::Rng64;

#[test]
fn saved_backbone_reproduces_embeddings_and_finetune() {
    let mut spec = SynthSpec::celeba_like(1);
    spec.n_max_train = 60;
    spec.imbalance_ratio = 8.0;
    spec.n_test_per_class = 15;
    let (mut train, mut test) = spec.generate(31);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);

    let mut cfg = PipelineConfig::small();
    cfg.arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 4,
    };
    cfg.backbone_epochs = 5;
    let mut rng = Rng64::new(8);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);

    // Serialize the trained backbone.
    let mut buf = Vec::new();
    save_weights(&mut tp.net, &mut buf).unwrap();

    // "Fresh process": a structurally identical, differently initialised
    // network, restored from the bytes.
    let mut restored = ConvNet::new(
        cfg.arch,
        train.shape,
        train.num_classes,
        &mut Rng64::new(777),
    );
    load_weights(&mut restored, buf.as_slice()).unwrap();

    // Embeddings must be bit-identical — batch-norm running statistics
    // are part of the serialized state.
    let original_fe = tp.embed(&test);
    let restored_fe = eos_repro::core::extract_embeddings(&mut restored, &test.x);
    assert_eq!(original_fe.data(), restored_fe.data());

    // And a head fine-tune from the restored backbone must agree with one
    // from the original, given the same RNG stream.
    let mut tp_restored = ThreePhase {
        net: restored,
        train_fe: eos_repro::core::extract_embeddings(&mut tp.net, &train.x),
        train_y: train.y.clone(),
        num_classes: train.num_classes,
        history: Vec::new(),
        backbone_seconds: 0.0,
    };
    let a = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut Rng64::new(5));
    let b = tp_restored.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut Rng64::new(5));
    assert_eq!(a.predictions, b.predictions);
}
