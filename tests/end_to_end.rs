//! End-to-end integration tests: the full three-phase pipeline, all four
//! losses, the pixel-space comparison pipeline, and reproducibility.

use eos_repro::core::{evaluate, preprocess_and_train, Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::nn::{Architecture, LossKind};
use eos_repro::resample::Smote;
use eos_repro::tensor::Rng64;

fn tiny_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::small();
    cfg.arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 4,
    };
    cfg.backbone_epochs = 6;
    cfg.head_epochs = 5;
    cfg
}

fn tiny_data(seed: u64) -> (eos_repro::data::Dataset, eos_repro::data::Dataset) {
    let mut spec = SynthSpec::celeba_like(1);
    spec.n_max_train = 80;
    spec.imbalance_ratio = 10.0;
    spec.n_test_per_class = 20;
    let (mut train, mut test) = spec.generate(seed);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    (train, test)
}

#[test]
fn three_phase_eos_beats_chance_and_runs_every_loss() {
    let (train, test) = tiny_data(1);
    let cfg = tiny_cfg();
    for loss in LossKind::ALL {
        let mut rng = Rng64::new(5);
        let mut tp = ThreePhase::train(&train, loss, &cfg, &mut rng);
        let r = tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
        assert!(
            r.bac > 0.25,
            "{} three-phase should beat 5-class chance: {}",
            loss.name(),
            r.bac
        );
        assert!(r.gm >= 0.0 && r.f1 > 0.0);
        assert_eq!(r.predictions.len(), test.len());
    }
}

#[test]
fn pipeline_is_bit_reproducible() {
    let (train, test) = tiny_data(2);
    let cfg = tiny_cfg();
    let run = || {
        let mut rng = Rng64::new(9);
        let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
        tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng)
    };
    let a = run();
    let b = run();
    assert_eq!(a.predictions, b.predictions, "same seed, same predictions");
    assert_eq!(a.bac, b.bac);
}

#[test]
fn preprocessing_pipeline_matches_three_phase_interface() {
    let (train, test) = tiny_data(3);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(1);
    let r = preprocess_and_train(
        &train,
        &test,
        LossKind::Ce,
        Some(&Smote::new(5)),
        &cfg,
        &mut rng,
    );
    assert!(r.bac > 0.25, "pre-processing BAC {}", r.bac);
    assert!(r.seconds > 0.0);
}

#[test]
fn head_finetune_does_not_change_feature_extractor() {
    let (train, test) = tiny_data(4);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(2);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let fe_before = tp.embed(&test);
    let _ = tp.finetune_head(Some(&Eos::new(10)), &cfg, &mut rng);
    let fe_after = tp.embed(&test);
    assert_eq!(
        fe_before.data(),
        fe_after.data(),
        "phase three must only touch the head"
    );
}

#[test]
fn backbone_reuse_across_methods_is_independent() {
    // Fine-tuning with method A then method B must give B the same result
    // as fine-tuning with B directly (fresh head each time).
    let (train, test) = tiny_data(5);
    let cfg = tiny_cfg();
    let mut tp = {
        let mut rng = Rng64::new(3);
        ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng)
    };
    // Direct: B only.
    let direct = {
        let mut rng = Rng64::new(77);
        let mut tp2 = {
            let mut r0 = Rng64::new(3);
            ThreePhase::train(&train, LossKind::Ce, &cfg, &mut r0)
        };
        tp2.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng)
    };
    // Sequential: A (consumes some rng), then B with a fresh stream.
    let _ = {
        let mut rng_a = Rng64::new(55);
        tp.finetune_and_eval(&Smote::new(5), &test, &cfg, &mut rng_a)
    };
    let seq = {
        let mut rng = Rng64::new(77);
        tp.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng)
    };
    assert_eq!(direct.predictions, seq.predictions);
}

#[test]
fn evaluate_is_deterministic_and_complete() {
    let (train, test) = tiny_data(6);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(4);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let a = evaluate(&mut tp.net, &test);
    let b = evaluate(&mut tp.net, &test);
    assert_eq!(a.predictions, b.predictions);
    assert!(a.predictions.iter().all(|&p| p < test.num_classes));
}
