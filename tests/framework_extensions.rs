//! Integration tests for the extension features: decoupling repairs,
//! model selection, pixel augmentation and the extra oversamplers, all
//! driven through the public facade.

use eos_repro::core::{
    decoupling_eval, three_cut_check, DecouplingMethod, Eos, PipelineConfig, ThreePhase,
};
use eos_repro::data::{augment_dataset, AugmentConfig, Dataset, SynthSpec};
use eos_repro::gan::DeepSmote;
use eos_repro::nn::{Architecture, LossKind};
use eos_repro::resample::KMeansSmote;
use eos_repro::tensor::Rng64;

fn tiny_cfg() -> PipelineConfig {
    let mut cfg = PipelineConfig::small();
    cfg.arch = Architecture::ResNet {
        blocks_per_stage: 1,
        width: 4,
    };
    cfg.backbone_epochs = 6;
    cfg.head_epochs = 5;
    cfg
}

fn tiny_data(seed: u64) -> (Dataset, Dataset) {
    let mut spec = SynthSpec::celeba_like(1);
    spec.n_max_train = 80;
    spec.imbalance_ratio = 10.0;
    spec.n_test_per_class = 20;
    let (mut train, mut test) = spec.generate(seed);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    (train, test)
}

#[test]
fn decoupling_methods_run_through_facade() {
    let (train, test) = tiny_data(41);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(1);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    for method in [
        DecouplingMethod::Crt,
        DecouplingMethod::TauNorm(0.8),
        DecouplingMethod::Ncm,
    ] {
        let r = decoupling_eval(&mut tp, method, &test, &cfg, &mut rng);
        assert!(r.bac > 0.2, "{} BAC {}", method.name(), r.bac);
        assert_eq!(r.predictions.len(), test.len());
    }
}

#[test]
fn extension_oversamplers_plug_into_three_phase() {
    let (train, test) = tiny_data(42);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(2);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let km = tp.finetune_and_eval(&KMeansSmote::new(2, 3), &test, &cfg, &mut rng);
    assert!(km.bac > 0.25, "KM-SMOTE BAC {}", km.bac);
    let ds = tp.finetune_and_eval(&DeepSmote::fast(), &test, &cfg, &mut rng);
    assert!(ds.bac > 0.25, "DeepSMOTE BAC {}", ds.bac);
}

#[test]
fn augmented_training_still_learns() {
    let (train, test) = tiny_data(43);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(3);
    let augmented = augment_dataset(&train, &AugmentConfig::default(), &mut rng);
    assert_eq!(augmented.len(), train.len());
    let mut tp = ThreePhase::train(&augmented, LossKind::Ce, &cfg, &mut rng);
    let r = tp.baseline_eval(&test);
    assert!(r.bac > 0.25, "augmented-training BAC {}", r.bac);
}

#[test]
fn cut_stability_check_is_reasonable_on_easy_data() {
    // A balanced, well-separated dataset should produce a stable report.
    let mut spec = SynthSpec::celeba_like(1);
    spec.n_max_train = 60;
    spec.imbalance_ratio = 1.0;
    spec.overlap = 0.1;
    spec.noise = 0.05;
    let (mut train, _) = spec.generate(44);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    let mut cfg = tiny_cfg();
    cfg.backbone_epochs = 10;
    let report = three_cut_check(&train, LossKind::Ce, &cfg, 3, 0.25, &mut Rng64::new(4));
    assert_eq!(report.cut_bacs.len(), 3);
    // Every cut clearly above 5-class chance; the spread may legitimately
    // exceed 2 points at this toy scale, so assert the metric plumbing,
    // not the paper's conclusion.
    assert!(
        report.cut_bacs.iter().all(|&b| b > 0.4),
        "cut BACs {:?}",
        report.cut_bacs
    );
}

#[test]
fn gap_report_matches_manual_computation() {
    let (train, test) = tiny_data(45);
    let cfg = tiny_cfg();
    let mut rng = Rng64::new(5);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let (gaps, split) = tp.gap_report(&test);
    assert_eq!(gaps.per_class.len(), train.num_classes);
    assert!(gaps.mean >= 0.0);
    assert!(split.fp_gap >= 0.0 && split.tp_gap >= 0.0);
    // Manual recomputation agrees.
    let test_fe = tp.embed(&test);
    let manual = eos_repro::core::generalization_gap(
        &tp.train_fe,
        &tp.train_y,
        &test_fe,
        &test.y,
        train.num_classes,
    );
    assert_eq!(gaps.mean, manual.mean);
    // And EOS still runs after the report (no state corruption).
    let r = tp.finetune_and_eval(&Eos::new(5), &test, &cfg, &mut rng);
    assert!(r.bac > 0.2);
}
