//! The paper's model-selection protocol (§IV-A) as a library workflow:
//! check training-cut stability, train one pipeline per loss, pick the
//! best on a validation split, then fine-tune the winner with EOS.
//!
//! ```sh
//! cargo run --release --example model_selection
//! ```

use eos_repro::core::{select_best, three_cut_check, Eos, PipelineConfig, ThreePhase};
use eos_repro::data::{stratified_split, SynthSpec};
use eos_repro::nn::LossKind;
use eos_repro::tensor::Rng64;

fn main() {
    let spec = SynthSpec::cifar10_like(1);
    let (mut train, mut test) = spec.generate(13);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);

    let cfg = PipelineConfig::small();
    let mut rng = Rng64::new(3);

    // §IV-A step 1: "run on three different cuts of the training set";
    // keep one cut when the BAC spread is under 2 points.
    println!("checking cut stability (3 stratified cuts) ...");
    let report = three_cut_check(&train, LossKind::Ce, &cfg, 3, 0.2, &mut rng);
    println!(
        "cut BACs: {:?}  spread {:.2} points  ({})",
        report
            .cut_bacs
            .iter()
            .map(|b| (b * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>(),
        report.spread_points,
        if report.stable {
            "stable — single cut is fine"
        } else {
            "unstable"
        }
    );

    // §IV-A step 2: train one model per loss, select the best.
    let (fit, validation) = stratified_split(&train, 0.2, &mut rng);
    println!("\ntraining one backbone per loss ...");
    let mut pipelines: Vec<ThreePhase> = LossKind::ALL
        .iter()
        .map(|&loss| {
            println!("  {} ...", loss.name());
            ThreePhase::train(&fit, loss, &cfg, &mut rng)
        })
        .collect();
    let winner = select_best(&mut pipelines, &validation);
    println!("selected backbone: {}", LossKind::ALL[winner].name());

    // Final: fine-tune the winner's head with EOS, evaluate on test.
    let mut best = pipelines.remove(winner);
    let base = best.baseline_eval(&test);
    let eos = best.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    println!(
        "\ntest BAC: baseline {:.4} -> EOS {:.4} ({:+.2} points)",
        base.bac,
        eos.bac,
        (eos.bac - base.bac) * 100.0
    );
    let (gaps, split) = best.gap_report(&test);
    println!(
        "final generalization gap {:.2} (mean over classes); TP gap {:.2} vs FP gap {:.2}",
        gaps.mean, split.tp_gap, split.fp_gap
    );
}
