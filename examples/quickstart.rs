//! Quickstart: train the three-phase framework with EOS on an imbalanced
//! synthetic dataset and compare against the end-to-end baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use eos_repro::core::{Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::nn::LossKind;
use eos_repro::tensor::Rng64;

fn main() {
    // 1. An exponentially imbalanced dataset (CelebA analogue, 40:1).
    let spec = SynthSpec::celeba_like(1);
    let (mut train, mut test) = spec.generate(7);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    println!(
        "train: {} samples, class counts {:?} (ratio {:.0}:1)",
        train.len(),
        train.class_counts(),
        train.imbalance_ratio()
    );

    // 2. Phase one: train a ResNet backbone end-to-end on imbalanced data.
    let cfg = PipelineConfig::small();
    let mut rng = Rng64::new(0);
    let mut pipeline = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let baseline = pipeline.baseline_eval(&test);
    println!(
        "baseline (end-to-end): BAC {:.4}  GM {:.4}  F1 {:.4}",
        baseline.bac, baseline.gm, baseline.f1
    );

    // 3. Phases two and three: balance the feature embeddings with EOS
    //    and fine-tune the classifier head (10 epochs, paper default).
    let eos = pipeline.finetune_and_eval(&Eos::new(10), &test, &cfg, &mut rng);
    println!(
        "EOS (three-phase):     BAC {:.4}  GM {:.4}  F1 {:.4}",
        eos.bac, eos.gm, eos.f1
    );
    println!(
        "EOS improved balanced accuracy by {:+.2} points in {:.1}s total",
        (eos.bac - baseline.bac) * 100.0,
        eos.seconds
    );
}
