//! Generalization-gap analysis (the paper's Algorithm 1 and Figure 4) on
//! a freshly trained backbone: per-class gaps against class imbalance,
//! the TP-vs-FP split, and the effect of EOS augmentation on the gap.
//!
//! ```sh
//! cargo run --release --example gap_analysis
//! ```

use eos_repro::core::{evaluate, generalization_gap, tp_fp_gap, Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::nn::LossKind;
use eos_repro::resample::{balance_with, Oversampler, Smote};
use eos_repro::tensor::Rng64;

fn main() {
    let spec = SynthSpec::cifar10_like(1);
    let (mut train, mut test) = spec.generate(3);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);

    let cfg = PipelineConfig::small();
    let mut rng = Rng64::new(1);
    println!("training backbone (CE) ...");
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let test_fe = tp.embed(&test);

    // Per-class gap vs class size: the minority tail should widen.
    let counts = train.class_counts();
    let gap = generalization_gap(&tp.train_fe, &tp.train_y, &test_fe, &test.y, 10);
    println!("\nclass | train samples | generalization gap");
    for (c, (count, g)) in counts.iter().zip(&gap.per_class).enumerate() {
        println!("{c:5} | {count:13} | {g:.3}");
    }
    println!("net gap (mean over classes): {:.3}", gap.mean);

    // The Figure 4 split: misclassified test samples sit far outside
    // their class's training footprint.
    let preds = evaluate(&mut tp.net, &test).predictions;
    let split = tp_fp_gap(&tp.train_fe, &tp.train_y, &test_fe, &test.y, &preds, 10);
    println!(
        "\nTP gap {:.3} vs FP gap {:.3} ({:.1}x) — errors live outside the training range",
        split.tp_gap,
        split.fp_gap,
        split.fp_gap / split.tp_gap.max(1e-9)
    );

    // Augmentation effect: SMOTE cannot move the gap, EOS shrinks it.
    for sampler in [
        Box::new(Smote::new(5)) as Box<dyn Oversampler>,
        Box::new(Eos::new(10)),
    ] {
        let (bx, by) = balance_with(sampler.as_ref(), &tp.train_fe, &tp.train_y, 10, &mut rng);
        let g = generalization_gap(&bx, &by, &test_fe, &test.y, 10);
        let tail: f64 = g.per_class[5..].iter().sum::<f64>() / 5.0;
        println!(
            "{:8}: net gap {:.3}, minority-tail gap {:.3}",
            sampler.name(),
            g.mean,
            tail
        );
    }
}
