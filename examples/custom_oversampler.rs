//! Extending the framework: plugging a *user-defined* oversampler into the
//! three-phase pipeline, and pointing the pipeline at real CIFAR-10 data
//! when it is available on disk.
//!
//! ```sh
//! cargo run --release --example custom_oversampler [path/to/cifar-10-batches-bin]
//! ```

use eos_repro::core::{PipelineConfig, ThreePhase};
use eos_repro::data::{exponential_profile, load_cifar10_dir, subsample_to_profile, SynthSpec};
use eos_repro::nn::LossKind;
use eos_repro::resample::{deficits, indices_by_class, Oversampler};
use eos_repro::tensor::{Rng64, Tensor};
use std::path::Path;

/// A toy user-defined oversampler: jittered duplication — repeats minority
/// samples with small Gaussian noise. Implementing [`Oversampler`] is all
/// that is needed to slot into the framework.
struct JitterOversampler {
    sigma: f32,
}

impl Oversampler for JitterOversampler {
    fn name(&self) -> &'static str {
        "Jitter"
    }

    fn oversample(
        &self,
        x: &Tensor,
        y: &[usize],
        num_classes: usize,
        rng: &mut Rng64,
    ) -> (Tensor, Vec<usize>) {
        let needs = deficits(y, num_classes);
        let idx = indices_by_class(y, num_classes);
        let width = x.dim(1);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (class, &need) in needs.iter().enumerate() {
            for _ in 0..need {
                let &row = rng.choose(&idx[class]);
                data.extend(
                    x.row_slice(row)
                        .iter()
                        .map(|&v| v + rng.normal_f32(0.0, self.sigma)),
                );
                labels.push(class);
            }
        }
        (Tensor::from_vec(data, &[labels.len(), width]), labels)
    }
}

fn main() {
    // Real CIFAR-10 when a path is given, synthetic analogue otherwise.
    let (mut train, mut test) = match std::env::args().nth(1) {
        Some(dir) => {
            println!("loading real CIFAR-10 from {dir} ...");
            let (full_train, test) =
                load_cifar10_dir(Path::new(&dir)).expect("CIFAR-10 binary batches");
            // Impose the paper's exponential 100:1 imbalance.
            let profile = exponential_profile(5000, 100.0, 10);
            let train = subsample_to_profile(&full_train, &profile, &mut Rng64::new(0));
            (train, test)
        }
        None => {
            println!("no CIFAR path given; using the synthetic analogue");
            SynthSpec::cifar10_like(1).generate(11)
        }
    };
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);
    println!("class counts: {:?}", train.class_counts());

    let cfg = PipelineConfig::small();
    let mut rng = Rng64::new(4);
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let baseline = tp.baseline_eval(&test);
    let custom = tp.finetune_and_eval(&JitterOversampler { sigma: 0.05 }, &test, &cfg, &mut rng);
    println!(
        "baseline BAC {:.4} -> Jitter-oversampled BAC {:.4}",
        baseline.bac, custom.bac
    );
}
