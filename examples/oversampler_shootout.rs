//! Every oversampler in the workspace on one imbalanced embedding-space
//! problem: the classical family, the GAN-based family, and EOS, all
//! through the same [`Oversampler`] trait and the same fine-tuned head.
//!
//! ```sh
//! cargo run --release --example oversampler_shootout
//! ```

use eos_repro::core::{Eos, PipelineConfig, ThreePhase};
use eos_repro::data::SynthSpec;
use eos_repro::gan::{BaganLite, CGan, DeepSmote, GamoLite};
use eos_repro::nn::LossKind;
use eos_repro::resample::{
    Adasyn, BalancedSvm, BorderlineSmote, KMeansSmote, Oversampler, RandomOversampler, Remix, Smote,
};
use eos_repro::tensor::Rng64;
use std::time::Instant;

fn main() {
    let spec = SynthSpec::svhn_like(1);
    let (mut train, mut test) = spec.generate(5);
    let (mean, std) = train.feature_stats();
    train.standardize(&mean, &std);
    test.standardize(&mean, &std);

    let cfg = PipelineConfig::small();
    let mut rng = Rng64::new(2);
    println!("training backbone once; every method reuses its embeddings\n");
    let mut tp = ThreePhase::train(&train, LossKind::Ce, &cfg, &mut rng);
    let baseline = tp.baseline_eval(&test);
    println!(
        "{:16} BAC {:.4}   (end-to-end, no augmentation)",
        "Baseline", baseline.bac
    );

    let samplers: Vec<Box<dyn Oversampler>> = vec![
        Box::new(RandomOversampler),
        Box::new(Smote::new(5)),
        Box::new(BorderlineSmote::new(5, 5)),
        Box::new(Adasyn::new(5)),
        Box::new(KMeansSmote::new(3, 5)),
        Box::new(BalancedSvm::new(5)),
        Box::new(Remix::new()),
        Box::new(GamoLite::new()),
        Box::new(BaganLite::new()),
        Box::new(DeepSmote::new()),
        Box::new(CGan::new()),
        Box::new(Eos::new(10)),
    ];
    for sampler in samplers {
        let t0 = Instant::now();
        let r = tp.finetune_and_eval(sampler.as_ref(), &test, &cfg, &mut rng);
        println!(
            "{:16} BAC {:.4}   GM {:.4}   F1 {:.4}   ({:.2}s fine-tune)",
            sampler.name(),
            r.bac,
            r.gm,
            r.f1,
            t0.elapsed().as_secs_f64()
        );
    }
}
