#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tier-1 tests.
# Run from the repository root. CI and pre-merge checks should pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo build --release
cargo test -q

# Perf/bit-identity smoke gates: bench_gemm exits non-zero if the packed
# GEMM differs from the seed kernel by a bit; train_step exits non-zero
# if a steady-state training step heap-allocates.
cargo run --release -q -p eos-bench --bin bench_gemm -- --smoke
cargo run --release -q -p eos-bench --bin train_step -- --smoke

# Numerical correctness gate: gradchecks every Layer and every loss,
# spot-checks the gap/metric formulas, and pins a golden-determinism
# digest of a training step across thread counts and kernel dispatch.
cargo run --release -q -p eos-bench --bin check_numerics -- --smoke

# Observability gate: a traced three-phase training run must emit
# results/TRACE_train.json with three well-nested phase spans, GEMM
# dispatch counters that sum, worker-pool utilisation, and byte-valid
# JSON/JSONL. (train_step above already audits that tracing, disabled,
# adds no allocations to the steady-state step.)
cargo run --release -q -p eos-bench --bin trace_train -- --smoke

# Cache-equivalence gate: a warm rerun of a table binary must train zero
# backbones (everything served from the artifact cache) and still produce
# a byte-identical CSV. Runs in a throwaway working dir + cache dir so it
# cannot disturb results/ or a developer's real cache.
cargo build --release -q -p eos-bench --bin table2
gate_dir="$(mktemp -d)"
trap 'rm -rf "$gate_dir"' EXIT
table2_bin="$PWD/target/release/table2"
(
  cd "$gate_dir"
  export EOS_CACHE_DIR="$gate_dir/cache"
  "$table2_bin" --scale smoke --seed 42 --datasets celeba \
    > cold.out 2> cold.err
  cp results/table2.csv cold.csv
  "$table2_bin" --scale smoke --seed 42 --datasets celeba \
    > warm.out 2> warm.err
  grep -q 'backbones trained: 0,' warm.err || {
    echo "FAIL: warm rerun retrained backbones:" >&2
    grep '\[exp:table2\]' warm.err >&2
    exit 1
  }
  cmp cold.csv results/table2.csv || {
    echo "FAIL: warm-cache CSV differs from cold-run CSV" >&2
    exit 1
  }
  cmp cold.out warm.out || {
    echo "FAIL: warm-cache stdout differs from cold-run stdout" >&2
    exit 1
  }
)
echo "cache-equivalence gate: warm rerun trained 0 backbones, output byte-identical"

# Parallelism gate: the smoke suite at --jobs 4 must be byte-identical to
# --jobs 1 — same stdout, same CSVs, same number of backbones trained —
# with each run on its own cold cache so the parallel pass cannot ride on
# the serial pass's artifacts. (The speedup itself is hardware-dependent
# and recorded by `suite --bench` into results/BENCH_suite.json; this
# gate pins the determinism contract.)
cargo build --release -q -p eos-bench --bin suite
suite_bin="$PWD/target/release/suite"
(
  cd "$gate_dir"
  rm -rf serial parallel
  mkdir -p serial parallel
  (
    cd serial
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime --jobs 1 > suite.out 2> suite.err
  )
  (
    cd parallel
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime --jobs 4 > suite.out 2> suite.err
  )
  cmp serial/suite.out parallel/suite.out || {
    echo "FAIL: suite stdout differs between --jobs 1 and --jobs 4" >&2
    exit 1
  }
  for csv in serial/results/*.csv; do
    cmp "$csv" "parallel/results/$(basename "$csv")" || {
      echo "FAIL: $(basename "$csv") differs between --jobs 1 and --jobs 4" >&2
      exit 1
    }
  done
  serial_trained="$(grep -o 'backbones trained: [0-9]*' serial/suite.err)"
  parallel_trained="$(grep -o 'backbones trained: [0-9]*' parallel/suite.err)"
  [ -n "$serial_trained" ] && [ "$serial_trained" = "$parallel_trained" ] || {
    echo "FAIL: trained-backbone counts differ: '$serial_trained' vs '$parallel_trained'" >&2
    exit 1
  }
)
echo "parallelism gate: --jobs 4 byte-identical to --jobs 1 (stdout, CSVs, backbones trained)"

# Scheduler bench smoke: both passes (serial + parallel, cold private
# caches) must agree byte-for-byte on every CSV; the binary exits
# non-zero on divergence and records the wall-clock split.
( cd "$gate_dir" && "$suite_bin" --scale smoke --seed 42 --datasets celeba \
    --jobs 4 --bench > bench.out 2> bench.err )
echo "suite bench gate: serial and parallel passes byte-identical"
