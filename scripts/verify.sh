#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tier-1 tests.
# Run from the repository root. CI and pre-merge checks should pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo build --release
cargo test -q
