#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tier-1 tests.
# Run from the repository root. CI and pre-merge checks should pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo build --release
cargo test -q

# Perf/bit-identity smoke gates: bench_gemm exits non-zero if the packed
# GEMM differs from the seed kernel by a bit; train_step exits non-zero
# if a steady-state training step heap-allocates.
cargo run --release -q -p eos-bench --bin bench_gemm -- --smoke
cargo run --release -q -p eos-bench --bin train_step -- --smoke

# Numerical correctness gate: gradchecks every Layer and every loss,
# spot-checks the gap/metric formulas, and pins a golden-determinism
# digest of a training step across thread counts and kernel dispatch.
cargo run --release -q -p eos-bench --bin check_numerics -- --smoke

# Observability gate: a traced three-phase training run must emit
# results/TRACE_train.json with three well-nested phase spans, GEMM
# dispatch counters that sum, worker-pool utilisation, and byte-valid
# JSON/JSONL. (train_step above already audits that tracing, disabled,
# adds no allocations to the steady-state step.)
cargo run --release -q -p eos-bench --bin trace_train -- --smoke

# Cache-equivalence gate: a warm rerun of a table binary must train zero
# backbones (everything served from the artifact cache) and still produce
# a byte-identical CSV. Runs in a throwaway working dir + cache dir so it
# cannot disturb results/ or a developer's real cache.
cargo build --release -q -p eos-bench --bin table2
gate_dir="$(mktemp -d)"
trap 'rm -rf "$gate_dir"' EXIT
table2_bin="$PWD/target/release/table2"
(
  cd "$gate_dir"
  export EOS_CACHE_DIR="$gate_dir/cache"
  "$table2_bin" --scale smoke --seed 42 --datasets celeba \
    > cold.out 2> cold.err
  cp results/table2.csv cold.csv
  "$table2_bin" --scale smoke --seed 42 --datasets celeba \
    > warm.out 2> warm.err
  grep -q 'backbones trained: 0,' warm.err || {
    echo "FAIL: warm rerun retrained backbones:" >&2
    grep '\[exp:table2\]' warm.err >&2
    exit 1
  }
  cmp cold.csv results/table2.csv || {
    echo "FAIL: warm-cache CSV differs from cold-run CSV" >&2
    exit 1
  }
  cmp cold.out warm.out || {
    echo "FAIL: warm-cache stdout differs from cold-run stdout" >&2
    exit 1
  }
)
echo "cache-equivalence gate: warm rerun trained 0 backbones, output byte-identical"

# Parallelism gate: the smoke suite at --jobs 4 must be byte-identical to
# --jobs 1 — same stdout, same CSVs, same number of backbones trained —
# with each run on its own cold cache so the parallel pass cannot ride on
# the serial pass's artifacts. (The speedup itself is hardware-dependent
# and recorded by `suite --bench` into results/BENCH_suite.json; this
# gate pins the determinism contract.)
cargo build --release -q -p eos-bench --bin suite
suite_bin="$PWD/target/release/suite"
(
  cd "$gate_dir"
  rm -rf serial parallel
  mkdir -p serial parallel
  (
    cd serial
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime --jobs 1 > suite.out 2> suite.err
  )
  (
    cd parallel
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime --jobs 4 > suite.out 2> suite.err
  )
  cmp serial/suite.out parallel/suite.out || {
    echo "FAIL: suite stdout differs between --jobs 1 and --jobs 4" >&2
    exit 1
  }
  for csv in serial/results/*.csv; do
    cmp "$csv" "parallel/results/$(basename "$csv")" || {
      echo "FAIL: $(basename "$csv") differs between --jobs 1 and --jobs 4" >&2
      exit 1
    }
  done
  serial_trained="$(grep -o 'backbones trained: [0-9]*' serial/suite.err)"
  parallel_trained="$(grep -o 'backbones trained: [0-9]*' parallel/suite.err)"
  [ -n "$serial_trained" ] && [ "$serial_trained" = "$parallel_trained" ] || {
    echo "FAIL: trained-backbone counts differ: '$serial_trained' vs '$parallel_trained'" >&2
    exit 1
  }
)
echo "parallelism gate: --jobs 4 byte-identical to --jobs 1 (stdout, CSVs, backbones trained)"

# Scheduler bench smoke: both passes (serial + parallel, cold private
# caches) must agree byte-for-byte on every CSV; the binary exits
# non-zero on divergence and records the wall-clock split.
( cd "$gate_dir" && "$suite_bin" --scale smoke --seed 42 --datasets celeba \
    --jobs 4 --bench > bench.out 2> bench.err )
echo "suite bench gate: serial and parallel passes byte-identical"

# Crash-resume gate: a suite run killed mid-stream (deterministic
# process abort at the 4th experiment cell) must resume on rerun —
# replaying the cells journaled before the kill, training zero backbones
# — and end byte-identical to an uninterrupted run. A second rerun then
# replays every cell without computing anything.
(
  cd "$gate_dir"
  rm -rf resume && mkdir -p resume/ref resume/crash
  (
    cd resume/ref
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime > suite.out 2> suite.err
  )
  (
    cd resume/crash
    if EOS_FAULTS='cell:4:abort' EOS_CACHE_DIR="$PWD/cache" "$suite_bin" \
        --scale smoke --seed 42 --datasets celeba --skip-runtime \
        > crash.out 2> crash.err; then
      echo "FAIL: aborted suite run exited zero" >&2
      exit 1
    fi
    grep -q 'aborting process at cell' crash.err || {
      echo "FAIL: the abort fault never fired" >&2
      exit 1
    }
    # Resume on the same cache + journal — with a transient-fault storm
    # still active: journaled cells replay, the rest compute, injected
    # IO errors are absorbed by the retry policy. Every *prewarmed*
    # backbone comes from the cache; only the derived backbones of
    # never-run cells may train, so the resumed count must be strictly
    # below the uninterrupted run's.
    EOS_FAULTS='cache.read:2:io' EOS_CACHE_DIR="$PWD/cache" "$suite_bin" \
      --scale smoke --seed 42 --datasets celeba --skip-runtime \
      > suite.out 2> suite.err
    ref_trained="$(grep -o 'backbones trained: [0-9]*' ../ref/suite.err | grep -o '[0-9]*$')"
    res_trained="$(grep -o 'backbones trained: [0-9]*' suite.err | grep -o '[0-9]*$')"
    [ -n "$ref_trained" ] && [ -n "$res_trained" ] \
      && [ "$res_trained" -lt "$ref_trained" ] || {
      echo "FAIL: resume saved no trainings ($res_trained vs $ref_trained uninterrupted)" >&2
      exit 1
    }
    if grep -q 'faults injected: 0,' suite.err; then
      echo "FAIL: the resume-time storm injected nothing" >&2
      exit 1
    fi
    if grep -q 'replayed: 0,' suite.err; then
      echo "FAIL: resumed suite replayed no journaled cells" >&2
      exit 1
    fi
    if grep -q 'cells computed: 0,' suite.err; then
      echo "FAIL: resume had nothing left to compute (abort fired too late?)" >&2
      exit 1
    fi
    # Second rerun: the journal is complete, every cell replays.
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime > replay.out 2> replay.err
    grep -q 'cells computed: 0,' replay.err || {
      echo "FAIL: full-replay rerun still computed cells" >&2
      exit 1
    }
    cmp suite.out replay.out || {
      echo "FAIL: full-replay stdout differs from the resumed run" >&2
      exit 1
    }
  )
  cmp resume/ref/suite.out resume/crash/suite.out || {
    echo "FAIL: resumed suite stdout differs from the uninterrupted run" >&2
    exit 1
  }
  for csv in resume/ref/results/*.csv; do
    cmp "$csv" "resume/crash/results/$(basename "$csv")" || {
      echo "FAIL: $(basename "$csv") differs after crash-resume" >&2
      exit 1
    }
  done
)
echo "crash-resume gate: aborted suite resumed byte-identically (journal replayed, trainings saved)"

# Mid-training-kill gate: a suite run killed *inside* a backbone training
# (deterministic process abort at the 2nd train.epoch boundary, fired
# right after that epoch's EOST checkpoint hit the disk) must resume on
# rerun — loading the checkpoint instead of restarting the training, so
# strictly fewer epochs are retrained than the uninterrupted run paid —
# and still end byte-identical on stdout and every CSV.
(
  cd "$gate_dir"
  rm -rf ckpt && mkdir -p ckpt/ref ckpt/kill
  (
    cd ckpt/ref
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime > suite.out 2> suite.err
  )
  (
    cd ckpt/kill
    if EOS_FAULTS='train.epoch:2:abort' EOS_CACHE_DIR="$PWD/cache" "$suite_bin" \
        --scale smoke --seed 42 --datasets celeba --skip-runtime \
        > crash.out 2> crash.err; then
      echo "FAIL: the mid-training abort exited zero" >&2
      exit 1
    fi
    grep -q 'aborting process at train.epoch' crash.err || {
      echo "FAIL: the train.epoch abort never fired" >&2
      exit 1
    }
    # Resume on the same cache: the killed training restarts from its
    # epoch-2 checkpoint, not from scratch.
    EOS_CACHE_DIR="$PWD/cache" "$suite_bin" --scale smoke --seed 42 \
      --datasets celeba --skip-runtime > suite.out 2> suite.err
    loaded="$(grep -o 'checkpoints saved: [0-9]*, loaded: [0-9]*' suite.err | grep -o '[0-9]*$')"
    [ -n "$loaded" ] && [ "$loaded" -ge 1 ] || {
      echo "FAIL: resumed suite loaded no training checkpoint" >&2
      exit 1
    }
    ref_epochs="$(grep -o 'epochs trained: [0-9]*' ../ref/suite.err | grep -o '[0-9]*$')"
    res_epochs="$(grep -o 'epochs trained: [0-9]*' suite.err | grep -o '[0-9]*$')"
    [ -n "$ref_epochs" ] && [ -n "$res_epochs" ] \
      && [ "$res_epochs" -lt "$ref_epochs" ] || {
      echo "FAIL: resume retrained every epoch ($res_epochs vs $ref_epochs uninterrupted)" >&2
      exit 1
    }
  )
  cmp ckpt/ref/suite.out ckpt/kill/suite.out || {
    echo "FAIL: mid-training-resumed suite stdout differs from the uninterrupted run" >&2
    exit 1
  }
  for csv in ckpt/ref/results/*.csv; do
    cmp "$csv" "ckpt/kill/results/$(basename "$csv")" || {
      echo "FAIL: $(basename "$csv") differs after a mid-training kill + resume" >&2
      exit 1
    }
  done
)
echo "mid-training-kill gate: epoch-boundary abort resumed from its checkpoint byte-identically"

# Fault-storm gates: (a) a storm of deterministic single-shot transient
# faults — cache read, write and claim each failing once — is absorbed
# by the bounded retry policy with byte-identical output; (b) a
# persistent cell panic fails the table with a typed FAILURE REPORT and
# a nonzero exit, and a clean rerun heals byte-identically.
(
  cd "$gate_dir"
  rm -rf faults && mkdir -p faults/clean faults/storm faults/broken
  (
    cd faults/clean
    EOS_CACHE_DIR="$PWD/cache" "$table2_bin" --scale smoke --seed 42 \
      --datasets celeba > table2.out 2> table2.err
  )
  (
    cd faults/storm
    EOS_FAULTS='cache.read:2:io,cache.write:1:io,cache.claim:1:io' \
      EOS_CACHE_DIR="$PWD/cache" "$table2_bin" --scale smoke --seed 42 \
      --datasets celeba > table2.out 2> table2.err
    if grep -q 'faults injected: 0,' table2.err; then
      echo "FAIL: the fault storm injected nothing" >&2
      exit 1
    fi
    if grep -q 'io retries: 0,' table2.err; then
      echo "FAIL: the fault storm exercised no retries" >&2
      exit 1
    fi
  )
  cmp faults/clean/table2.out faults/storm/table2.out || {
    echo "FAIL: stdout differs under an absorbed fault storm" >&2
    exit 1
  }
  cmp faults/clean/results/table2.csv faults/storm/results/table2.csv || {
    echo "FAIL: table2.csv differs under an absorbed fault storm" >&2
    exit 1
  }
  (
    cd faults/broken
    if EOS_FAULTS='cell:table2:panic' EOS_CACHE_DIR="$PWD/cache" "$table2_bin" \
        --scale smoke --seed 42 --datasets celeba > broken.out 2> broken.err; then
      echo "FAIL: a persistently panicking table exited zero" >&2
      exit 1
    fi
    grep -q 'FAILURE REPORT' broken.err || {
      echo "FAIL: no structured failure report on stderr" >&2
      exit 1
    }
    grep -q 'task-panic' broken.err || {
      echo "FAIL: the panic did not surface as a typed task-panic" >&2
      exit 1
    }
    # The storm gone, the same cache dir heals to a clean run.
    EOS_CACHE_DIR="$PWD/cache" "$table2_bin" --scale smoke --seed 42 \
      --datasets celeba > table2.out 2> table2.err
  )
  cmp faults/clean/table2.out faults/broken/table2.out || {
    echo "FAIL: stdout differs after healing a panicking table" >&2
    exit 1
  }
  cmp faults/clean/results/table2.csv faults/broken/results/table2.csv || {
    echo "FAIL: table2.csv differs after healing a panicking table" >&2
    exit 1
  }
)
echo "fault-storm gate: transient storm absorbed, panic storm reported + healed byte-identically"

# Serving gate: the batched inference engine must (a) pass its
# differential suite (serve output bit-identical to the trainer's eval
# forward across batch sizes and thread splits) and the micro-batcher
# property/determinism suites, and (b) at least double single-request
# throughput at batch 32 on the 4-thread budget — serve_bench exits
# non-zero otherwise, and also self-validates that its
# results/TRACE_serve.json{,l} artifacts are byte-valid RFC 8259 JSON.
cargo test -q -p eos-serve
cargo run --release -q -p eos-bench --bin serve_bench -- --smoke
echo "serving gate: differential + batcher suites green, batching speedup >= 2x, trace JSON valid"
