#!/usr/bin/env bash
# Full verification gate: formatting, lints, release build, tier-1 tests.
# Run from the repository root. CI and pre-merge checks should pass this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo build --release
cargo test -q

# Perf/bit-identity smoke gates: bench_gemm exits non-zero if the packed
# GEMM differs from the seed kernel by a bit; train_step exits non-zero
# if a steady-state training step heap-allocates.
cargo run --release -q -p eos-bench --bin bench_gemm -- --smoke
cargo run --release -q -p eos-bench --bin train_step -- --smoke

# Numerical correctness gate: gradchecks every Layer and every loss,
# spot-checks the gap/metric formulas, and pins a golden-determinism
# digest of a training step across thread counts and kernel dispatch.
cargo run --release -q -p eos-bench --bin check_numerics -- --smoke

# Observability gate: a traced three-phase training run must emit
# results/TRACE_train.json with three well-nested phase spans, GEMM
# dispatch counters that sum, worker-pool utilisation, and byte-valid
# JSON/JSONL. (train_step above already audits that tracing, disabled,
# adds no allocations to the steady-state step.)
cargo run --release -q -p eos-bench --bin trace_train -- --smoke
